#include "firmware/firmware.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "fault/injector.hpp"
#include "sim/log.hpp"
#include "sim/trace.hpp"
#include "sim/strf.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/hooks.hpp"

namespace xt::fw {

using sim::Time;
using telemetry::Stage;
using telemetry::prov_stamp;

namespace {

/// Byte offset of WireHeader::stream_seq in the packed layout (the firmware
/// patches the sequence number into the host-built header packet, since the
/// go-back-n stream is a firmware-level concept).
constexpr std::size_t kStreamSeqOffset = 48;

void patch_stream_seq(std::span<std::byte> packet, std::uint32_t seq) {
  std::memcpy(packet.data() + kStreamSeqOffset, &seq, sizeof(seq));
}

}  // namespace

Firmware::Firmware(sim::Engine& eng, ss::Nic& nic, const ss::Config& cfg)
    : eng_(eng),
      nic_(nic),
      cfg_(cfg),
      ppc_(eng, sim::strf("fw%u.ppc", nic.node())),
      sources_(cfg.n_sources),
      cb_region_(nic.sram().reserve("control block", cfg.control_block_bytes)),
      source_region_(
          nic.sram().reserve("sources", cfg.n_sources * cfg.source_bytes)),
      image_region_(nic.sram().reserve("firmware image", cfg.fw_image_bytes)) {
  nic_.set_rx_client(*this);
  auto& reg = eng_.metrics();
  const std::string pre = sim::strf("fw.n%u.", nic_.node());
  c_.tx_cmds = &reg.counter(pre + "tx_cmds");
  c_.rx_cmds = &reg.counter(pre + "rx_cmds");
  c_.releases = &reg.counter(pre + "releases");
  c_.tx_msgs = &reg.counter(pre + "tx_msgs");
  c_.rx_headers = &reg.counter(pre + "rx_headers");
  c_.rx_completions = &reg.counter(pre + "rx_completions");
  c_.inline_deliveries = &reg.counter(pre + "inline_deliveries");
  c_.interrupts = &reg.counter(pre + "interrupts");
  c_.crc_drops = &reg.counter(pre + "crc_drops");
  c_.exhaustion_drops = &reg.counter(pre + "exhaustion_drops");
  c_.nacks_sent = &reg.counter(pre + "nacks_sent");
  c_.nacks_received = &reg.counter(pre + "nacks_received");
  c_.retransmits = &reg.counter(pre + "retransmits");
  c_.rewinds = &reg.counter(pre + "rewinds");
  c_.duplicates_dropped = &reg.counter(pre + "duplicates_dropped");
  c_.accel_matches = &reg.counter(pre + "accel_matches");
  c_.ct_increments = &reg.counter(pre + "ct_increments");
  c_.triggered_fires = &reg.counter(pre + "triggered_fires");
  c_.mailbox_polls = &reg.counter(pre + "mailbox_polls");
  c_.rx_pendings_in_use = &reg.gauge(pre + "rx_pendings_in_use");
}

Firmware::Counters Firmware::counters() const {
  Counters s;
  s.tx_cmds = c_.tx_cmds->value;
  s.rx_cmds = c_.rx_cmds->value;
  s.releases = c_.releases->value;
  s.tx_msgs = c_.tx_msgs->value;
  s.rx_headers = c_.rx_headers->value;
  s.rx_completions = c_.rx_completions->value;
  s.inline_deliveries = c_.inline_deliveries->value;
  s.interrupts = c_.interrupts->value;
  s.crc_drops = c_.crc_drops->value;
  s.exhaustion_drops = c_.exhaustion_drops->value;
  s.nacks_sent = c_.nacks_sent->value;
  s.nacks_received = c_.nacks_received->value;
  s.retransmits = c_.retransmits->value;
  s.rewinds = c_.rewinds->value;
  s.duplicates_dropped = c_.duplicates_dropped->value;
  s.accel_matches = c_.accel_matches->value;
  s.ct_increments = c_.ct_increments->value;
  s.triggered_fires = c_.triggered_fires->value;
  return s;
}

Firmware::~Firmware() = default;

FwProcId Firmware::register_process(const ProcessOptions& opts) {
  Proc p;
  p.accelerated = opts.accelerated;
  p.matcher = opts.matcher;
  assert(!opts.accelerated || opts.matcher != nullptr);
  const std::size_t n_rx =
      opts.n_rx_pendings != 0
          ? opts.n_rx_pendings
          : (opts.accelerated ? cfg_.n_accel_rx_pendings
                              : cfg_.n_generic_rx_pendings);
  const std::size_t n_tx =
      opts.n_tx_pendings != 0
          ? opts.n_tx_pendings
          : (opts.accelerated ? cfg_.n_accel_tx_pendings
                              : cfg_.n_generic_tx_pendings);
  const std::size_t total = n_rx + n_tx;
  p.sram = nic_.sram().reserve(
      sim::strf("proc%zu pendings+mailbox", procs_.size()),
      total * cfg_.lower_pending_bytes + cfg_.per_process_bytes);
  p.upper.resize(total);
  p.lower.resize(total);
  p.rx_free.reserve(n_rx);
  for (std::size_t i = 0; i < n_rx; ++i) {
    p.rx_free.push_back(static_cast<PendingId>(i));
  }
  p.tx_free.reserve(n_tx);
  for (std::size_t i = n_rx; i < total; ++i) {
    p.tx_free.push_back(static_cast<PendingId>(i));
  }
  p.eq = std::make_unique<FwEventQueue>(eng_, cfg_.fw_eq_depth);
  p.result_waiters = std::make_unique<sim::WaitQueue>(eng_);
  if (opts.accelerated) {
    // Counting events + trigger table live in SRAM and only exist for
    // accelerated processes (the generic path has no firmware matching to
    // hang them off).
    p.ct_sram = nic_.sram().reserve(
        sim::strf("proc%zu counters+triggers", procs_.size()),
        cfg_.n_accel_counters * cfg_.counter_bytes +
            cfg_.n_accel_triggers * cfg_.trigger_bytes);
    p.cts.assign(cfg_.n_accel_counters, 0);
    p.ct_live.assign(cfg_.n_accel_counters, false);
    // Reserved once: trigger_scan suspends mid-vector, so the table must
    // never reallocate under it.
    p.triggers.reserve(cfg_.n_accel_triggers);
    p.ct_waiters = std::make_unique<sim::WaitQueue>(eng_);
  }
  procs_.push_back(std::move(p));
  return static_cast<FwProcId>(procs_.size() - 1);
}

void Firmware::bind_pid(std::uint16_t pid, FwProcId proc) {
  if (pid >= pid_route_.size()) pid_route_.resize(pid + 1, kGenericProc);
  pid_route_[pid] = proc;
}

PendingId Firmware::host_alloc_tx_pending(FwProcId proc) {
  auto& p = procs_[static_cast<std::size_t>(proc)];
  if (p.tx_free.empty()) return kNoPending;
  const PendingId id = p.tx_free.back();
  p.tx_free.pop_back();
  return id;
}

void Firmware::host_free_tx_pending(FwProcId proc, PendingId id) {
  auto& p = procs_[static_cast<std::size_t>(proc)];
  p.lower[id] = LowerPending{};
  p.tx_free.push_back(id);
}

UpperPending& Firmware::upper(FwProcId proc, PendingId id) {
  return procs_[static_cast<std::size_t>(proc)].upper[id];
}

FwEventQueue& Firmware::event_queue(FwProcId proc) {
  return *procs_[static_cast<std::size_t>(proc)].eq;
}

void Firmware::post_command(FwProcId proc, Command cmd) {
  // Host-side posted write: the command becomes visible in the mailbox one
  // HT crossing later; the firmware notices it at its next poll.
  eng_.schedule_after(cfg_.ht_write_latency,
                      [this, proc, cmd = std::move(cmd)]() mutable {
                        auto& p = procs_[static_cast<std::size_t>(proc)];
                        if (p.mailbox.size() >= cfg_.mailbox_depth) {
                          panic("mailbox command FIFO overflow");
                          return;
                        }
                        p.mailbox.push_back(std::move(cmd));
                        if (!dispatch_running_) {
                          dispatch_running_ = true;
                          sim::spawn(dispatch_loop());
                        }
                      });
}

sim::CoTask<void> Firmware::dispatch_loop() {
  eng_.tag_category(telemetry::Cat::kFirmware,
                    static_cast<int>(nic_.node()));
  // The idle loop notices new mailbox work at poll granularity.
  co_await sim::delay(eng_, cfg_.fw_poll);
  for (;;) {
    bool any = false;
    c_.mailbox_polls->add();
    for (FwProcId proc = 0; proc < static_cast<FwProcId>(procs_.size());
         ++proc) {
      auto& p = procs_[static_cast<std::size_t>(proc)];
      if (p.mailbox.empty()) continue;
      any = true;
      Command cmd = std::move(p.mailbox.front());
      p.mailbox.pop_front();
      co_await handle_command(proc, std::move(cmd));
    }
    if (!any) break;
  }
  dispatch_running_ = false;
}

sim::CoTask<void> Firmware::handle_command(FwProcId proc, Command cmd) {
  if (panicked_) co_return;
  if (auto* tx = std::get_if<TxCommand>(&cmd)) {
    co_await ppc_.use(cfg_.fw_tx_cmd);
    c_.tx_cmds->add();
    prov_stamp(eng_, tx->prov, Stage::kFwTxCmd);
    LowerPending& lp = lower(proc, tx->pending);
    lp.state = LowerPending::State::kTxQueued;
    lp.proc = proc;
    lp.tx = std::move(*tx);
    // "If there is no source structure for the destination node, a new one
    // is allocated and initialized." (§4.3)
    if (sources_.lookup_or_alloc(lp.tx.dst) == nullptr) {
      panic("source pool exhausted on transmit");
      co_return;
    }
    tx_list_.push_back(lp.tx.pending);
    tx_list_procs_.push_back(proc);
    if (!tx_worker_running_) {
      tx_worker_running_ = true;
      sim::spawn(tx_worker());
    }
  } else if (auto* rx = std::get_if<RxCommand>(&cmd)) {
    co_await ppc_.use(cfg_.fw_rx_cmd);
    c_.rx_cmds->add();
    LowerPending& lp = lower(proc, rx->pending);
    if (lp.state != LowerPending::State::kRxHeader) {
      // The message was dropped (e.g. failed the end-to-end CRC) after the
      // host saw the header but before this command arrived; the host has
      // been told via kRxDropped and will release the pending.
      co_return;
    }
    if (lp.msg) prov_stamp(eng_, lp.msg->prov_id, Stage::kFwRxCmd);
    lp.rx = std::move(*rx);
    lp.cmd_ready = true;
    // Link at the tail of the source's RX pending list (§4.3).
    SourceSlot* src = sources_.lookup(lp.msg->src);
    assert(src != nullptr);
    src->rx_list.emplace_back(proc, lp.rx.pending);
    maybe_start_deposit(*src);
  } else if (auto* rel = std::get_if<ReleaseCommand>(&cmd)) {
    co_await ppc_.use(cfg_.fw_event_post);
    c_.releases->add();
    free_rx_pending(proc, rel->pending);
  } else if (auto* ct = std::get_if<CtCommand>(&cmd)) {
    // The host touch that starts an offloaded collective: one mailbox
    // write, then the trigger table takes over.
    co_await ppc_.use(cfg_.fw_ct_inc);
    ct_add(proc, ct->ct, ct->inc);
  } else if (auto* q = std::get_if<QueryCommand>(&cmd)) {
    co_await ppc_.use(cfg_.fw_event_post);
    std::uint64_t value = 0;
    switch (q->what) {
      case QueryCommand::What::kHeartbeat: value = heartbeat(); break;
      case QueryCommand::What::kSourcesInUse:
        value = sources_.in_use();
        break;
      case QueryCommand::What::kRxFreePendings:
        value = procs_[static_cast<std::size_t>(proc)].rx_free.size();
        break;
      case QueryCommand::What::kRxMessages:
        value = c_.rx_completions->value;
        break;
    }
    // The result becomes visible to the busy-waiting host one HT posted
    // write later.
    const std::uint64_t ticket = q->ticket;
    eng_.schedule_after(cfg_.ht_write_latency, [this, proc, ticket, value] {
      auto& p = procs_[static_cast<std::size_t>(proc)];
      p.results.emplace_back(ticket, value);
      p.result_waiters->notify_all();
    });
  }
}

sim::CoTask<std::uint64_t> Firmware::host_query(FwProcId proc,
                                                QueryCommand::What what) {
  const std::uint64_t ticket = next_ticket_++;
  QueryCommand q;
  q.what = what;
  q.ticket = ticket;
  post_command(proc, q);
  auto& p = procs_[static_cast<std::size_t>(proc)];
  for (;;) {
    for (auto it = p.results.begin(); it != p.results.end(); ++it) {
      if (it->first == ticket) {
        const std::uint64_t value = it->second;
        p.results.erase(it);
        co_return value;
      }
    }
    co_await p.result_waiters->wait();
  }
}

CtId Firmware::host_ct_alloc(FwProcId proc) {
  auto& p = procs_[static_cast<std::size_t>(proc)];
  for (std::size_t i = 0; i < p.cts.size(); ++i) {
    if (!p.ct_live[i]) {
      p.ct_live[i] = true;
      p.cts[i] = 0;
      return static_cast<CtId>(i);
    }
  }
  return kNoCt;
}

void Firmware::host_ct_free(FwProcId proc, CtId ct) {
  auto& p = procs_[static_cast<std::size_t>(proc)];
  assert(ct < p.ct_live.size());
  p.ct_live[ct] = false;
  p.cts[ct] = 0;
}

std::uint64_t Firmware::host_ct_get(FwProcId proc, CtId ct) const {
  return procs_[static_cast<std::size_t>(proc)].cts[ct];
}

void Firmware::host_ct_set(FwProcId proc, CtId ct, std::uint64_t value) {
  procs_[static_cast<std::size_t>(proc)].cts[ct] = value;
}

bool Firmware::host_add_trigger(FwProcId proc, TriggeredOp op) {
  auto& p = procs_[static_cast<std::size_t>(proc)];
  // Capacity == n_accel_triggers was reserved at boot; refusing beyond it
  // both models the SRAM table limit and guarantees a suspended
  // trigger_scan never sees the vector reallocate.
  if (p.triggers.size() >= cfg_.n_accel_triggers) return false;
  p.triggers.push_back(std::move(op));
  return true;
}

void Firmware::host_rearm_triggers(FwProcId proc) {
  for (auto& t : procs_[static_cast<std::size_t>(proc)].triggers) {
    t.fired = false;
  }
}

void Firmware::host_reset_triggers(FwProcId proc) {
  procs_[static_cast<std::size_t>(proc)].triggers.clear();
}

std::size_t Firmware::triggers_armed(FwProcId proc) const {
  const auto& p = procs_[static_cast<std::size_t>(proc)];
  std::size_t n = 0;
  for (const auto& t : p.triggers) {
    if (!t.fired) ++n;
  }
  return n;
}

sim::WaitQueue& Firmware::ct_waiters(FwProcId proc) {
  return *procs_[static_cast<std::size_t>(proc)].ct_waiters;
}

void Firmware::ct_add(FwProcId proc, CtId ct, std::uint64_t inc) {
  auto& p = procs_[static_cast<std::size_t>(proc)];
  assert(ct < p.cts.size());
  p.cts[ct] += inc;
  c_.ct_increments->add();
  p.ct_waiters->notify_all();
  if (p.trigger_scan_running) return;  // the live scan will re-pass
  for (const auto& t : p.triggers) {
    if (!t.fired && t.trig_ct == ct && p.cts[ct] >= t.threshold) {
      p.trigger_scan_running = true;
      sim::spawn(trigger_scan(proc));
      return;
    }
  }
}

sim::CoTask<void> Firmware::trigger_scan(FwProcId proc) {
  auto& p = procs_[static_cast<std::size_t>(proc)];
  // Passes repeat until one fires nothing.  A zero-fire pass runs without
  // suspending, so no counter can change under it — which makes "nothing
  // fired" a sound quiescence test.  Increments that land while a firing
  // pass is suspended are picked up by the next pass (ct_add sees
  // trigger_scan_running and does not spawn a second scan).
  for (;;) {
    bool fired_any = false;
    for (std::size_t i = 0; i < p.triggers.size(); ++i) {
      // Index-based access: entries armed during a suspension are fine
      // (capacity is pre-reserved, the vector never moves).
      if (p.triggers[i].fired) continue;
      const CtId ct = p.triggers[i].trig_ct;
      if (ct == kNoCt || p.cts[ct] < p.triggers[i].threshold) continue;
      p.triggers[i].fired = true;
      fired_any = true;
      if (p.triggers[i].kind == TriggeredOp::Kind::kCtInc) {
        // Counter chaining is a pure SRAM update folded into the scan.
        co_await ppc_.use(cfg_.fw_ct_inc);
        ct_add(proc, p.triggers[i].target_ct, p.triggers[i].inc);
      } else {
        co_await fire_triggered_put(proc, i);
      }
      if (panicked_) break;
    }
    if (!fired_any || panicked_) break;
  }
  p.trigger_scan_running = false;
}

sim::CoTask<void> Firmware::fire_triggered_put(FwProcId proc,
                                               std::size_t idx) {
  auto& p = procs_[static_cast<std::size_t>(proc)];
  co_await ppc_.use(cfg_.fw_trigger_fire);
  if (panicked_) co_return;
  // Coroutine-frame copies (the table is stable, but the transmit below
  // suspends for a long time and rearm may clear fields meanwhile).
  const net::NodeId dst = p.triggers[idx].dst;
  const ptl::WireHeader hdr = p.triggers[idx].hdr;
  const ss::PayloadReader reader = p.triggers[idx].reader;
  const std::uint32_t payload_bytes = p.triggers[idx].payload_bytes;
  const std::uint32_t n_dma_cmds = p.triggers[idx].n_dma_cmds;

  auto msg = std::make_shared<net::Message>();
  msg->src = nic_.node();
  msg->dst = dst;
  // The payload read happens NOW — at fire time, not arm time — so a
  // triggered put of an accumulation buffer ships the values deposited
  // since arming.  Small payloads ride inline in the header packet (§6).
  std::vector<std::byte> inline_bytes;
  if (payload_bytes > 0 && payload_bytes <= cfg_.inline_payload_max &&
      reader) {
    inline_bytes.resize(payload_bytes);
    reader(0, inline_bytes);
  }
  const auto pkt = ptl::make_header_packet(hdr, inline_bytes);
  msg->header.assign(pkt.begin(), pkt.end());
  if (cfg_.gobackn) {
    TxStream& stream = tx_streams_[msg->dst];
    patch_stream_seq(msg->header, stream.next_seq++);
  }
  const std::uint32_t wire_payload =
      inline_bytes.empty() ? payload_bytes : 0;
  co_await nic_.transmit(msg, reader, wire_payload, n_dma_cmds);
  if (cfg_.gobackn) gbn_record(msg->dst, *msg, n_dma_cmds);
  c_.tx_msgs->add();
  c_.triggered_fires->add();
}

void Firmware::inject_stall(sim::Time busy) { sim::spawn(stall_worker(busy)); }

sim::CoTask<void> Firmware::stall_worker(sim::Time busy) {
  // Holding the PPC resource stalls every handler behind the injected
  // busy-loop, exactly as a runaway handler would.
  co_await ppc_.use(busy);
}

void Firmware::fault_kill() {
  if (panicked_) return;
  panicked_ = true;
  panic_time_ = eng_.now();
  panic_reason_ = "fault injection: node killed";
}

void Firmware::fault_revive() {
  if (!panicked_) return;
  panicked_ = false;
  panic_reason_.clear();
  // SRAM/pending/stream state survived; re-kick the work loops that exit
  // while panicked so queued work drains again.
  bool mailbox_pending = false;
  for (const auto& p : procs_) mailbox_pending |= !p.mailbox.empty();
  if (mailbox_pending && !dispatch_running_) {
    dispatch_running_ = true;
    sim::spawn(dispatch_loop());
  }
  if (!tx_list_.empty() && !tx_worker_running_) {
    tx_worker_running_ = true;
    sim::spawn(tx_worker());
  }
  for (auto& [dst, stream] : tx_streams_) {
    if (!stream.window.empty() && !stream.watchdog_running) {
      stream.watchdog_running = true;
      sim::spawn(gbn_watchdog(dst));
    }
  }
}

std::uint64_t Firmware::heartbeat() const {
  // One tick per 100 us of firmware uptime; frozen at panic time.
  const sim::Time upto = panicked_ ? panic_time_ : eng_.now();
  return static_cast<std::uint64_t>(upto.to_ps()) / 100'000'000ull;
}

sim::CoTask<void> Firmware::tx_worker() {
  eng_.tag_category(telemetry::Cat::kFirmware,
                    static_cast<int>(nic_.node()));
  while (!tx_list_.empty() && !panicked_) {
    const PendingId id = tx_list_.front();
    const FwProcId proc = tx_list_procs_.front();
    LowerPending& lp = lower(proc, id);
    lp.state = LowerPending::State::kTxActive;
    co_await ppc_.use(cfg_.fw_tx_start);
    prov_stamp(eng_, lp.tx.prov, Stage::kTxDma);

    auto msg = std::make_shared<net::Message>();
    msg->src = nic_.node();
    msg->dst = lp.tx.dst;
    msg->prov_id = lp.tx.prov;
    UpperPending& up = upper(proc, id);
    msg->header.assign(up.header_packet.begin(), up.header_packet.end());
    if (cfg_.gobackn) {
      TxStream& stream = tx_streams_[msg->dst];
      patch_stream_seq(msg->header, stream.next_seq++);
    }
    if (eng_.trace_enabled()) {
      sim::trace_begin(eng_, sim::strf("n%u.txdma", nic_.node()),
                       sim::strf("tx %u B -> n%u", lp.tx.payload_bytes,
                                 msg->dst));
    }
    co_await nic_.transmit(msg, lp.tx.reader, lp.tx.payload_bytes,
                           lp.tx.n_dma_cmds);
    if (eng_.trace_enabled()) {
      sim::trace_end(eng_, sim::strf("n%u.txdma", nic_.node()),
                     sim::strf("tx %u B -> n%u", lp.tx.payload_bytes,
                               msg->dst));
    }
    if (cfg_.gobackn) gbn_record(msg->dst, *msg, lp.tx.n_dma_cmds);
    c_.tx_msgs->add();

    co_await ppc_.use(cfg_.fw_tx_complete);
    lp.state = LowerPending::State::kHostOwned;
    tx_list_.pop_front();
    tx_list_procs_.pop_front();
    post_event(proc, FwEvent{FwEvent::Type::kTxComplete, id});
  }
  tx_worker_running_ = false;
}

void Firmware::on_rx_header(const net::MessagePtr& msg) {
  if (panicked_) return;
  sim::spawn(rx_header_handler(msg));
}

void Firmware::on_rx_complete(const net::MessagePtr& msg, bool crc_ok) {
  if (panicked_) return;
  sim::spawn(rx_complete_handler(msg, crc_ok));
}

sim::CoTask<void> Firmware::rx_header_handler(net::MessagePtr msg) {
  eng_.tag_category(telemetry::Cat::kFirmware,
                    static_cast<int>(nic_.node()));
  if (eng_.trace_enabled()) {
    sim::trace_begin(eng_, sim::strf("n%u.fw", nic_.node()), "rx_header");
  }
  co_await ppc_.use(cfg_.fw_rx_header);
  if (eng_.trace_enabled()) {
    sim::trace_end(eng_, sim::strf("n%u.fw", nic_.node()), "rx_header");
  }
  if (panicked_) co_return;
  c_.rx_headers->add();
  prov_stamp(eng_, msg->prov_id, Stage::kFwRxHeader);
  const ptl::WireHeader hdr = ptl::unpack_header(msg->header);

  // Firmware-level control traffic (go-back-n) never reaches a process.
  if (hdr.op == ptl::WireOp::kFwAck) {
    TxStream& stream = tx_streams_[msg->src];
    while (stream.window_base < hdr.stream_seq && !stream.window.empty()) {
      stream.window.pop_front();
      ++stream.window_base;
    }
    co_return;
  }
  if (hdr.op == ptl::WireOp::kFwNack) {
    c_.nacks_received->add();
    // After a give-up the stream abandoned its window; a late NACK from
    // the (revived) peer would ask for sequences we no longer retain.
    if (!tx_streams_[msg->src].dead_dest) {
      sim::spawn(gbn_rewind(msg->src, hdr.stream_seq));
    }
    co_return;
  }

  // Route by destination pid; unbound pids go to the generic process.
  const FwProcId proc = hdr.dst_pid < pid_route_.size()
                            ? pid_route_[hdr.dst_pid]
                            : kGenericProc;
  auto& p = procs_[static_cast<std::size_t>(proc)];

  // Source structure lookup/allocation (§4.3).  A *fresh* allocation can
  // be denied by injected transient SRAM failure; an existing slot is a
  // lookup and immune.
  fault::Injector* inj = eng_.fault_injector();
  SourceSlot* src = sources_.lookup(msg->src);
  if (src == nullptr && inj != nullptr && inj->sram_alloc_fails(nic_.node())) {
    c_.exhaustion_drops->add();
    if (!cfg_.gobackn) {
      panic("transient SRAM failure allocating source");
    }
    co_return;
  }
  if (src == nullptr) src = sources_.lookup_or_alloc(msg->src);
  if (src == nullptr) {
    c_.exhaustion_drops->add();
    if (!cfg_.gobackn) {
      panic("source pool exhausted on receive");
    }
    // With go-back-n we can only drop; the sender rewinds on timeout-free
    // NACK from a later state.  (Source slots are never freed, so this is
    // a hard limit either way — see DESIGN.md.)
    co_return;
  }

  // Go-back-n stream check.  NACKs always carry verified_seq — the sender
  // may pop window entries only below the CRC-verified cursor, since
  // anything at or above it might still have to be retransmitted.
  if (cfg_.gobackn) {
    if (hdr.stream_seq != src->expected_seq) {
      if (hdr.stream_seq > src->expected_seq) {
        // A predecessor was dropped: discard and (once) NACK the gap.
        if (!src->nack_outstanding) {
          src->nack_outstanding = true;
          c_.nacks_sent->add();
          sim::spawn(gbn_send_control(msg->src, ptl::WireOp::kFwNack,
                                      src->verified_seq));
        }
      } else {
        c_.duplicates_dropped->add();
        // A duplicate of a fully verified stream means the sender is
        // retransmitting on stale window state (e.g. the tail of a burst
        // with a coalesced ack still pending): re-ack so its window drains
        // instead of the watchdog retransmitting forever.
        if (!src->nack_outstanding &&
            src->verified_seq == src->expected_seq) {
          src->unacked_accepts = 0;
          sim::spawn(gbn_send_control(msg->src, ptl::WireOp::kFwAck,
                                      src->verified_seq));
        }
      }
      co_return;
    }
  }

  // Allocate an RX pending from the target process' pool (§4.3).  Injected
  // transient SRAM failure makes this allocation fail as if exhausted.
  const bool sram_denied =
      inj != nullptr && inj->sram_alloc_fails(nic_.node());
  if (p.rx_free.empty() || sram_denied) {
    c_.exhaustion_drops->add();
    if (!cfg_.gobackn) {
      panic(sram_denied
                ? "transient SRAM failure allocating RX pending"
                : sim::strf("out of RX pendings for firmware process %d",
                            proc));
      co_return;
    }
    if (!src->nack_outstanding) {
      src->nack_outstanding = true;
      c_.nacks_sent->add();
      sim::spawn(gbn_send_control(msg->src, ptl::WireOp::kFwNack,
                                  src->verified_seq));
    }
    co_return;
  }
  const PendingId id = p.rx_free.back();
  p.rx_free.pop_back();
  c_.rx_pendings_in_use->set(++rx_in_use_);

  if (cfg_.gobackn) {
    // Accept into the stream.  The cumulative FwAck is deferred to the
    // completion handler (gbn_verified): acking at header time would let
    // the sender trim window entries the receiver might still have to
    // NACK back after an end-to-end CRC failure.
    ++src->expected_seq;
    src->nack_outstanding = false;
  }

  LowerPending& lp = p.lower[id];
  lp = LowerPending{};
  lp.state = LowerPending::State::kRxHeader;
  lp.proc = proc;
  lp.msg = msg;
  lp.stream_seq = hdr.stream_seq;

  // Write the header packet through to the upper pending (HT posted write;
  // the host sees it before the event that announces it).
  UpperPending& up = p.upper[id];
  std::copy(msg->header.begin(), msg->header.end(),
            up.header_packet.begin());
  up.msg = msg;

  // "Inline" means the sender actually packed the user bytes into the
  // header packet (so there is no body to wait for).  Classify by the
  // presence of a body, not by hdr.length alone: a sender that chose not
  // to inline a small message still delivers it as a body.
  lp.inline_delivery =
      (hdr.op == ptl::WireOp::kPut || hdr.op == ptl::WireOp::kReply ||
       hdr.op == ptl::WireOp::kAtomicSum) &&
      msg->payload.empty();

  inflight_rx_.put(msg->seq, {proc, id});

  // Accelerated processes: matching happens here, in the firmware (§3.3
  // "accelerated mode"), so no interrupt and no host round-trip is needed.
  if (p.accelerated) {
    std::size_t walked = 0;
    if (hdr.op == ptl::WireOp::kGet) {
      auto prog = p.matcher->fw_get(hdr, id, walked);
      c_.accel_matches->add();
      if (!prog.has_value()) {
        if (cfg_.gobackn) {
          gbn_discards_.put(msg->seq, {msg->src, hdr.stream_seq});
        }
        inflight_rx_.erase(msg->seq);
        free_rx_pending(proc, id);
        co_return;
      }
      lp.fw_owned = true;  // the completion handler must leave this to us
      co_await ppc_.use(cfg_.fw_match_per_me *
                        static_cast<std::int64_t>(std::max<std::size_t>(
                            walked, 1)));
      // Queue the reply transmit ourselves — no host involvement.  Small
      // replies ride inline in the header packet, the same optimization
      // the host applies in generic mode (§6).
      auto reply = std::make_shared<net::Message>();
      reply->src = nic_.node();
      reply->dst = msg->src;
      std::vector<std::byte> inline_bytes;
      if (prog->mlength <= cfg_.inline_payload_max && prog->mlength > 0 &&
          prog->reader) {
        inline_bytes.resize(prog->mlength);
        prog->reader(0, inline_bytes);
      }
      const auto pkt =
          ptl::make_header_packet(prog->reply_header, inline_bytes);
      reply->header.assign(pkt.begin(), pkt.end());
      if (cfg_.gobackn) {
        TxStream& stream = tx_streams_[reply->dst];
        patch_stream_seq(reply->header, stream.next_seq++);
      }
      const std::uint32_t wire_payload =
          inline_bytes.empty() ? prog->mlength : 0;
      co_await nic_.transmit(reply, prog->reader, wire_payload,
                             prog->n_dma_cmds);
      if (cfg_.gobackn) gbn_record(reply->dst, *reply, prog->n_dma_cmds);
      c_.tx_msgs->add();
      // The GET side is complete; hand the request pending to the library
      // so it can post PTL_EVENT_GET_* and release.
      lp.state = LowerPending::State::kHostOwned;
      post_event(proc, FwEvent{FwEvent::Type::kRxHeader, id});
      co_return;
    }
    auto res = p.matcher->fw_match(hdr, id, walked);
    c_.accel_matches->add();
    if (!res.has_value()) {
      if (cfg_.gobackn) {
        gbn_discards_.put(msg->seq, {msg->src, hdr.stream_seq});
      }
      inflight_rx_.erase(msg->seq);
      free_rx_pending(proc, id);
      co_await ppc_.use(cfg_.fw_match_per_me *
                        static_cast<std::int64_t>(
                            std::max<std::size_t>(walked, 1)));
      co_return;
    }
    // Record the deposit program BEFORE yielding the PPC for the matching
    // cost: the completion handler for a header-only message is already
    // queued right behind us.
    lp.rx.pending = id;
    lp.rx.deliver_bytes = res->mlength;
    lp.rx.n_dma_cmds = res->n_dma_cmds;
    lp.rx.deposit = std::move(res->deposit);
    lp.rx.ct = res->ct_id;
    lp.rx.fw_complete = res->fw_complete;
    lp.cmd_ready = true;
    if (!lp.inline_delivery) {
      src->rx_list.emplace_back(proc, id);
    }
    co_await ppc_.use(cfg_.fw_match_per_me *
                      static_cast<std::int64_t>(
                          std::max<std::size_t>(walked, 1)));
    prov_stamp(eng_, msg->prov_id, Stage::kFwMatch);
    if (!lp.inline_delivery) {
      if (SourceSlot* s2 = sources_.lookup(msg->src)) {
        maybe_start_deposit(*s2);
      }
    }
    // Inline and header-only cases complete in rx_complete_handler.
    co_return;
  }

  // Generic process: header-only messages defer their (single) event to the
  // completion handler, which knows the CRC verdict; messages with a body
  // get the header event immediately so host matching overlaps arrival.
  if (!msg->payload.empty()) {
    post_event(proc, FwEvent{FwEvent::Type::kRxHeader, id}, msg->prov_id);
  }
}

sim::CoTask<void> Firmware::rx_complete_handler(net::MessagePtr msg,
                                                bool crc_ok) {
  eng_.tag_category(telemetry::Cat::kFirmware,
                    static_cast<int>(nic_.node()));
  co_await ppc_.use(cfg_.fw_rx_complete);
  if (panicked_) co_return;
  if (cfg_.gobackn) {
    // Accepted into the stream but intentionally discarded (no match /
    // released before completion): the CRC verdict still moves the
    // verified cursor, or the sender's window would never drain.
    if (auto* d = gbn_discards_.find(msg->seq)) {
      const auto [src_node, seq] = *d;
      gbn_discards_.erase(msg->seq);
      if (crc_ok) {
        gbn_verified(src_node, seq);
      } else {
        c_.crc_drops->add();
        gbn_crc_fail(src_node, seq);
      }
      co_return;
    }
  }
  const auto* rx = inflight_rx_.find(msg->seq);
  if (rx == nullptr) co_return;  // dropped at header time
  const auto [proc, id] = *rx;
  auto& p = procs_[static_cast<std::size_t>(proc)];
  LowerPending& lp = p.lower[id];
  lp.crc_ok = crc_ok;

  if (lp.fw_owned) {
    // Accelerated GET request: the header handler transmits the reply and
    // posts the event itself.
    if (cfg_.gobackn) {
      if (crc_ok) {
        gbn_verified(msg->src, lp.stream_seq);
      } else {
        c_.crc_drops->add();
        gbn_crc_fail(msg->src, lp.stream_seq);
      }
    }
    inflight_rx_.erase(msg->seq);
    co_return;
  }

  if (!crc_ok || lp.gbn_cancelled) {
    if (!crc_ok) {
      c_.crc_drops->add();
      // With go-back-n the failure is recoverable: rewind the stream and
      // NACK so the sender retransmits.  A message cancelled by an earlier
      // failure of its own stream must not rewind again (the stream
      // already restarts below its sequence).
      if (cfg_.gobackn && !lp.gbn_cancelled) {
        gbn_crc_fail(msg->src, lp.stream_seq);
      }
    }
    inflight_rx_.erase(msg->seq);
    if (msg->payload.empty()) {
      // No event was posted yet; silently reclaim.
      free_rx_pending(proc, id);
    } else {
      // The host already saw the header; tell it the message died.  If the
      // pending was queued on the source RX list, unlink it.
      if (SourceSlot* src = sources_.lookup(msg->src)) {
        std::erase(src->rx_list, std::pair{proc, id});
      }
      lp.state = LowerPending::State::kHostOwned;
      post_event(proc, FwEvent{FwEvent::Type::kRxDropped, id});
    }
    co_return;
  }

  lp.body_complete = true;
  if (cfg_.gobackn) gbn_verified(msg->src, lp.stream_seq);

  if (msg->payload.empty()) {
    // Header-only: inline put/reply, zero-length put, get request, or a
    // Portals ack.  Inline data (if any) is already in the upper pending —
    // delivering the "new message" and "message complete" notifications
    // together is exactly the §6 small-message optimization.
    inflight_rx_.erase(msg->seq);
    c_.rx_completions->add();
    prov_stamp(eng_, msg->prov_id, Stage::kFwComplete);
    if (lp.inline_delivery) c_.inline_deliveries->add();
    if (p.accelerated && lp.inline_delivery) {
      if (lp.rx.deposit) {
        const auto inl = ptl::inline_payload_of(
            std::span<const std::byte>(msg->header));
        lp.rx.deposit(inl.first(
            std::min<std::size_t>(lp.rx.deliver_bytes, inl.size())));
      }
      const CtId ct = lp.rx.ct;
      if (lp.rx.fw_complete) {
        // CT-counted EQ-less deposit: the firmware retires the pending
        // itself — no event, no host touch.  Bump the counter AFTER the
        // pending is back in the pool so a triggered put fired by this
        // count finds the slot free.
        free_rx_pending(proc, id);
        if (ct != kNoCt) ct_add(proc, ct, 1);
      } else {
        lp.state = LowerPending::State::kHostOwned;
        if (ct != kNoCt) ct_add(proc, ct, 1);
        post_event(proc, FwEvent{FwEvent::Type::kRxComplete, id},
                   msg->prov_id);
      }
    } else {
      lp.state = LowerPending::State::kHostOwned;
      post_event(proc, FwEvent{FwEvent::Type::kRxHeader, id}, msg->prov_id);
    }
    co_return;
  }

  // Body complete; if the receive command is already programmed, the
  // deposit can finish as soon as the pending reaches its list head.
  if (SourceSlot* src = sources_.lookup(msg->src)) {
    maybe_start_deposit(*src);
  }
}

void Firmware::maybe_start_deposit(SourceSlot& src) {
  if (src.deposit_active || src.rx_list.empty()) return;
  const auto [proc, head] = src.rx_list.front();
  LowerPending& lp = lower(proc, head);
  if (lp.cmd_ready && lp.body_complete) {
    src.deposit_active = true;
    sim::spawn(deposit_worker(src.node));
  }
}

sim::CoTask<void> Firmware::deposit_worker(net::NodeId source_node) {
  eng_.tag_category(telemetry::Cat::kFirmware,
                    static_cast<int>(nic_.node()));
  SourceSlot* src = sources_.lookup(source_node);
  assert(src != nullptr);
  while (!src->rx_list.empty()) {
    const auto [owner, id] = src->rx_list.front();
    LowerPending& lp = lower(owner, id);
    // Head not ready yet (command outstanding or body still arriving):
    // stop; a later rx-command / body-completion restarts the worker.
    if (!lp.cmd_ready || !lp.body_complete) break;
    lp.state = LowerPending::State::kRxActive;

    if (eng_.trace_enabled()) {
      sim::trace_begin(eng_, sim::strf("n%u.rxdma", nic_.node()),
                       sim::strf("deposit %u B", lp.rx.deliver_bytes));
    }
    co_await nic_.deposit(lp.rx.deliver_bytes, lp.rx.n_dma_cmds);
    if (eng_.trace_enabled()) {
      sim::trace_end(eng_, sim::strf("n%u.rxdma", nic_.node()),
                     sim::strf("deposit %u B", lp.rx.deliver_bytes));
    }
    prov_stamp(eng_, lp.msg->prov_id, Stage::kRxDma);
    if (lp.rx.deposit && lp.rx.deliver_bytes > 0) {
      lp.rx.deposit(std::span<const std::byte>(lp.msg->payload)
                        .first(lp.rx.deliver_bytes));
    }
    co_await ppc_.use(cfg_.fw_rx_complete);
    c_.rx_completions->add();
    const std::uint64_t prov = lp.msg->prov_id;
    prov_stamp(eng_, prov, Stage::kFwComplete);
    inflight_rx_.erase(lp.msg->seq);
    src->rx_list.pop_front();
    const CtId ct = lp.rx.ct;
    if (lp.rx.fw_complete) {
      // Offload-collective data path: firmware-complete, no host event.
      free_rx_pending(owner, id);
      if (ct != kNoCt) ct_add(owner, ct, 1);
    } else {
      lp.state = LowerPending::State::kHostOwned;
      if (ct != kNoCt) ct_add(owner, ct, 1);
      post_event(owner, FwEvent{FwEvent::Type::kRxComplete, id}, prov);
    }
  }
  src->deposit_active = false;
}

void Firmware::post_event(FwProcId proc, FwEvent ev, std::uint64_t prov) {
  auto& p = procs_[static_cast<std::size_t>(proc)];
  const bool generic = !p.accelerated;
  eng_.schedule_after(
      cfg_.ht_write_latency + cfg_.fw_event_post,
      [this, proc, ev, generic, prov] {
        auto& pp = procs_[static_cast<std::size_t>(proc)];
        if (!pp.eq->post(ev)) {
          panic("firmware event queue overflow");
          return;
        }
        if (generic && irq_) {
          prov_stamp(eng_, prov, Stage::kIrqRaise);
          if (fault::Injector* inj = eng_.fault_injector()) {
            const fault::Injector::IrqFate fate = inj->irq_fate(nic_.node());
            if (fate.drop) {
              // Interrupt lost on the HT crossing: the event sits in the
              // queue until the host's slow housekeeping poll notices it
              // (liveness is preserved, latency is not).
              eng_.schedule_after(
                  Time::ps(static_cast<std::int64_t>(fate.recovery_ps)),
                  [this] {
                    c_.interrupts->add();
                    if (irq_) irq_();
                  });
              return;
            }
            if (fate.delay_ps != 0) {
              // Delayed raise: events posted meanwhile coalesce into the
              // one late interrupt.
              eng_.schedule_after(
                  Time::ps(static_cast<std::int64_t>(fate.delay_ps)),
                  [this] {
                    c_.interrupts->add();
                    if (irq_) irq_();
                  });
              return;
            }
          }
          c_.interrupts->add();
          irq_();
        } else if (!generic) {
          // Accelerated mode never interrupts: the event sits in the
          // polled queue until the library's pump notices it.
          prov_stamp(eng_, prov, Stage::kEventPost);
        }
      });
}

void Firmware::free_rx_pending(FwProcId proc, PendingId id) {
  auto& p = procs_[static_cast<std::size_t>(proc)];
  LowerPending& lp = p.lower[id];
  if (cfg_.gobackn && lp.msg) {
    // Freed before its wire completion handler ran (e.g. the host dropped
    // an unmatched message mid-stream and released the pending): the CRC
    // verdict must still move the stream's verified cursor, so remember
    // the stream position under the network seq.
    const auto* rx = inflight_rx_.find(lp.msg->seq);
    if (rx != nullptr && *rx == std::pair{proc, id}) {
      gbn_discards_.put(lp.msg->seq, {lp.msg->src, lp.stream_seq});
      inflight_rx_.erase(lp.msg->seq);
    }
  }
  lp = LowerPending{};
  p.upper[id].msg.reset();
  p.rx_free.push_back(id);
  c_.rx_pendings_in_use->set(--rx_in_use_);
}

std::vector<std::string> Firmware::debug_pendings(FwProcId proc) const {
  std::vector<std::string> out;
  const auto& p = procs_[static_cast<std::size_t>(proc)];
  for (std::size_t i = 0; i < p.lower.size(); ++i) {
    const LowerPending& lp = p.lower[i];
    if (lp.state == LowerPending::State::kFree) continue;
    out.push_back(sim::strf(
        "pending %zu state=%d cmd=%d body=%d inline=%d fw_owned=%d src=%u "
        "netseq=%llu",
        i, static_cast<int>(lp.state), lp.cmd_ready, lp.body_complete,
        lp.inline_delivery, lp.fw_owned, lp.msg ? lp.msg->src : 0,
        lp.msg ? static_cast<unsigned long long>(lp.msg->seq) : 0));
  }
  return out;
}

void Firmware::panic(std::string reason) {
  if (panicked_) return;
  panicked_ = true;
  panic_time_ = eng_.now();
  panic_reason_ = std::move(reason);
  sim::log_msg(eng_, sim::LogLevel::kError, sim::strf("fw.n%u", nic_.node()),
               "PANIC: " + panic_reason_);
  // Black box: with error logging on, a panic also dumps the engine's
  // last-dispatches ring — what the whole machine was doing in the run-up,
  // not just this node.  Guarded so excused panics (injected overloads in
  // raw-mode fuzzing) stay silent in normal runs.
  if (eng_.log_enabled(sim::LogLevel::kError)) {
    sim::log_msg(eng_, sim::LogLevel::kError,
                 sim::strf("fw.n%u", nic_.node()),
                 "flight recorder at panic:\n" +
                     eng_.flight_recorder().dump());
  }
}

void Firmware::gbn_verified(net::NodeId src_node, std::uint32_t seq) {
  SourceSlot* s = sources_.lookup(src_node);
  // Completions arrive in wire order per source, so `seq` is normally
  // exactly the verified cursor; anything else is a stale completion from
  // a rewound stream segment and must not advance it.
  if (s == nullptr || s->verified_seq != seq) return;
  s->verified_seq = seq + 1;
  if (++s->unacked_accepts >= cfg_.gobackn_ack_every) {
    s->unacked_accepts = 0;
    sim::spawn(
        gbn_send_control(src_node, ptl::WireOp::kFwAck, s->verified_seq));
  }
}

void Firmware::gbn_crc_fail(net::NodeId src_node, std::uint32_t seq) {
  SourceSlot* s = sources_.lookup(src_node);
  if (s == nullptr) return;
  // The stream restarts at the failed message: everything accepted after
  // it will be re-delivered by the retransmit, so cancel in-flight
  // successors (a second delivery would otherwise follow) and forget
  // discarded ones (the retransmit re-discards them).
  s->expected_seq = seq;
  s->unacked_accepts = 0;
  inflight_rx_.for_each([&](std::uint64_t, std::pair<FwProcId, PendingId>& pi) {
    LowerPending& lp = lower(pi.first, pi.second);
    if (lp.msg && lp.msg->src == src_node && !lp.fw_owned &&
        lp.stream_seq > seq) {
      lp.gbn_cancelled = true;
    }
  });
  gbn_discards_.erase_if([&](std::uint64_t, const auto& v) {
    return v.first == src_node && v.second > seq;
  });
  if (!s->nack_outstanding) {
    s->nack_outstanding = true;
    c_.nacks_sent->add();
    sim::spawn(gbn_send_control(src_node, ptl::WireOp::kFwNack, seq));
  }
}

void Firmware::gbn_record(net::NodeId dst, const net::Message& msg,
                          std::uint32_t n_dma_cmds) {
  TxStream& stream = tx_streams_[dst];
  if (stream.dead_dest) return;  // reliability waived after give-up
  if (!stream.watchdog_running) {
    stream.watchdog_running = true;
    sim::spawn(gbn_watchdog(dst));
  }
  TxStream::Sent sent;
  assert(msg.header.size() == ptl::kHeaderPacketBytes);
  std::copy(msg.header.begin(), msg.header.end(), sent.packet.begin());
  sent.payload = msg.payload;
  sent.n_dma_cmds = n_dma_cmds;
  sent.prov = msg.prov_id;
  stream.window.push_back(std::move(sent));
  while (stream.window.size() > cfg_.gobackn_window) {
    stream.window.pop_front();
    ++stream.window_base;
  }
}

sim::CoTask<void> Firmware::gbn_send_control(net::NodeId dst, ptl::WireOp op,
                                             std::uint32_t seq) {
  co_await ppc_.use(cfg_.fw_tx_start);
  auto msg = std::make_shared<net::Message>();
  msg->src = nic_.node();
  msg->dst = dst;
  ptl::WireHeader h;
  h.op = op;
  h.src_nid = nic_.node();
  h.stream_seq = seq;
  const auto pkt = ptl::make_header_packet(h, {});
  msg->header.assign(pkt.begin(), pkt.end());
  co_await nic_.transmit(msg, nullptr, 0, 1);
}

sim::CoTask<void> Firmware::gbn_watchdog(net::NodeId dst) {
  // Covers losses the NACK path cannot recover on its own: a NACK that
  // arrived while a rewind was in progress, or a dropped tail with no
  // later traffic to trigger another NACK.  If the window makes no
  // progress for a full period, rewind from its base with exponentially
  // increasing backoff — unthrottled full-window retransmits saturate the
  // receiver's PowerPC and collapse an incast entirely.
  TxStream& stream = tx_streams_[dst];
  std::uint32_t last_base = stream.window_base;
  if (stream.backoff.is_zero()) stream.backoff = cfg_.gobackn_backoff;
  while (!panicked_) {
    co_await sim::delay(eng_, cfg_.gobackn_timeout + stream.backoff);
    if (stream.window.empty()) break;
    if (stream.window_base == last_base) {
      if (!stream.rewinding) {
        stream.backoff =
            std::min(stream.backoff * 2, cfg_.gobackn_backoff_max);
        if (++stream.no_progress >= cfg_.gobackn_max_rewinds) {
          // The destination has been unreachable through a full backoff
          // ladder: give up so the simulation terminates.  The abandoned
          // messages surface at their initiators as Portals ack timeouts.
          stream.dead_dest = true;
          stream.window.clear();
          stream.window_base = stream.next_seq;
          if (fault::Injector* inj = eng_.fault_injector()) {
            inj->count_gbn_giveup();
          }
          break;
        }
        sim::spawn(gbn_rewind(dst, stream.window_base));
      }
    } else {
      stream.backoff = cfg_.gobackn_backoff;  // progress: reset
      stream.no_progress = 0;
    }
    last_base = stream.window_base;
  }
  stream.watchdog_running = false;
}

sim::CoTask<void> Firmware::gbn_rewind(net::NodeId dst,
                                       std::uint32_t from_seq) {
  TxStream& stream = tx_streams_[dst];
  if (stream.rewinding || stream.dead_dest) co_return;
  c_.rewinds->add();
  stream.rewinding = true;
  // Everything before from_seq is implicitly acknowledged.
  while (stream.window_base < from_seq && !stream.window.empty()) {
    stream.window.pop_front();
    ++stream.window_base;
  }
  if (stream.window_base > from_seq) {
    // Stale NACK: injected reordering can deliver a NACK after a later
    // cumulative ack already advanced the window past it.  Everything it
    // asks for is acknowledged — nothing to retransmit.
    stream.rewinding = false;
    co_return;
  }
  if (stream.window_base != from_seq) {
    panic(sim::strf("go-back-n window lost seq %u (base %u)", from_seq,
                    stream.window_base));
    stream.rewinding = false;
    co_return;
  }
  co_await sim::delay(eng_, cfg_.gobackn_backoff);
  // Retransmit a bounded burst of the retained window in order (the
  // receiver can only absorb a few messages before its pendings refill).
  const std::size_t n = std::min(stream.window.size(), cfg_.gobackn_burst);
  for (std::size_t i = 0; i < n && !panicked_; ++i) {
    if (i >= stream.window.size()) break;  // trimmed by an ack meanwhile
    // NOTE: the retransmit payload is held in a coroutine-frame local and
    // captured BY REFERENCE: GCC 12 double-destroys non-trivial by-value
    // lambda captures inside co_await expressions.  The local outlives the
    // fully-awaited transmit.
    TxStream::Sent sent = stream.window[i];
    c_.retransmits->add();
    prov_stamp(eng_, sent.prov, Stage::kRetransmit);
    auto msg = std::make_shared<net::Message>();
    msg->src = nic_.node();
    msg->dst = dst;
    msg->prov_id = sent.prov;
    msg->header.assign(sent.packet.begin(), sent.packet.end());
    const std::vector<std::byte>& payload = sent.payload;
    co_await nic_.transmit(
        msg,
        [&payload](std::size_t off, std::span<std::byte> out) {
          std::copy_n(payload.begin() + static_cast<std::ptrdiff_t>(off),
                      out.size(), out.begin());
        },
        static_cast<std::uint32_t>(payload.size()), sent.n_dma_cmds);
  }
  stream.rewinding = false;
}

}  // namespace xt::fw
