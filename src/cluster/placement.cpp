#include "cluster/placement.hpp"

#include <algorithm>
#include <cassert>

namespace xt::cluster {

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kContiguous: return "contiguous";
    case Placement::kScattered: return "scattered";
    case Placement::kRandom: return "random";
  }
  return "?";
}

std::optional<Placement> placement_from_name(std::string_view name) {
  if (name == "contiguous" || name == "block") return Placement::kContiguous;
  if (name == "scattered" || name == "stride") return Placement::kScattered;
  if (name == "random") return Placement::kRandom;
  return std::nullopt;
}

NodeAllocator::NodeAllocator(int nodes, std::uint64_t seed)
    : free_(static_cast<std::size_t>(nodes), true),
      nfree_(nodes),
      rng_(seed) {}

std::vector<net::NodeId> NodeAllocator::free_ids() const {
  std::vector<net::NodeId> ids;
  ids.reserve(static_cast<std::size_t>(nfree_));
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i]) ids.push_back(static_cast<net::NodeId>(i));
  }
  return ids;
}

std::vector<net::NodeId> NodeAllocator::allocate(int n, Placement policy) {
  if (n <= 0 || n > nfree_) return {};
  const std::size_t un = static_cast<std::size_t>(n);
  std::vector<net::NodeId> picked;
  picked.reserve(un);
  switch (policy) {
    case Placement::kContiguous: {
      // Lowest run of n consecutive free ids, if fragmentation left one.
      std::size_t run = 0;
      for (std::size_t i = 0; i < free_.size() && picked.empty(); ++i) {
        run = free_[i] ? run + 1 : 0;
        if (run == un) {
          for (std::size_t j = i + 1 - un; j <= i; ++j) {
            picked.push_back(static_cast<net::NodeId>(j));
          }
        }
      }
      if (picked.empty()) {
        // Best-effort compaction: the n lowest free ids.
        const std::vector<net::NodeId> ids = free_ids();
        picked.assign(ids.begin(), ids.begin() + static_cast<long>(un));
      }
      break;
    }
    case Placement::kScattered: {
      const std::vector<net::NodeId> ids = free_ids();
      const std::size_t stride = std::max<std::size_t>(ids.size() / un, 1);
      for (std::size_t i = 0; i < un; ++i) picked.push_back(ids[i * stride]);
      break;
    }
    case Placement::kRandom: {
      // Partial Fisher-Yates over the free list; draw order is rank order.
      std::vector<net::NodeId> ids = free_ids();
      for (std::size_t i = 0; i < un; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(
                    rng_.below(static_cast<std::uint64_t>(ids.size() - i)));
        std::swap(ids[i], ids[j]);
        picked.push_back(ids[i]);
      }
      break;
    }
  }
  assert(picked.size() == un);
  for (net::NodeId id : picked) {
    assert(free_[id]);
    free_[id] = false;
  }
  nfree_ -= n;
  return picked;
}

void NodeAllocator::release(const std::vector<net::NodeId>& nodes) {
  for (net::NodeId id : nodes) {
    assert(!free_[id]);
    free_[id] = true;
  }
  nfree_ += static_cast<int>(nodes.size());
}

}  // namespace xt::cluster
