#include "cluster/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>
#include <numeric>

#include "harness/scenario.hpp"
#include "sim/condition.hpp"
#include "sim/strf.hpp"
#include "telemetry/metrics.hpp"
#include "workload/detail.hpp"
#include "workload/oneside.hpp"

namespace xt::cluster {

namespace {

namespace wd = workload::detail;

wd::Pace pace_for(const workload::WorkloadSpec& spec) {
  if (spec.pattern == workload::PatternKind::kRpc) return wd::Pace::kReply;
  return spec.count_drops ? wd::Pace::kSendEnd : wd::Pace::kAck;
}

/// Runs `t` and decrements the join counter, waking the joiner at zero.
sim::CoTask<void> with_join(sim::CoTask<void> t, int& remaining,
                            sim::WaitQueue& done) {
  co_await std::move(t);
  if (--remaining == 0) done.notify_all();
}

struct Runner {
  const ClusterSpec& spec;
  harness::Instance& inst;
  NodeAllocator alloc;
  sim::WaitQueue cv;  ///< woken on arrivals and job departures
  std::deque<std::size_t> fifo;  ///< arrived jobs (index into spec.jobs)
  std::vector<JobResult> results;
  int done_jobs = 0;

  Runner(const ClusterSpec& s, harness::Instance& i, int machine_nodes)
      : spec(s),
        inst(i),
        alloc(machine_nodes, sim::Rng(s.seed).u64()),
        cv(i.engine()),
        results(s.jobs.size()) {}

  sim::CoTask<void> dispatcher();
  sim::CoTask<void> run_job(std::size_t idx);
  sim::CoTask<void> finish_job(std::size_t idx);
};

sim::CoTask<void> Runner::dispatcher() {
  const int total = static_cast<int>(spec.jobs.size());
  while (done_jobs < total) {
    if (fifo.empty()) {
      co_await cv.wait();
      continue;
    }
    const std::size_t idx = fifo.front();
    const JobSpec& job = spec.jobs[idx];
    if (job.work.ranks > alloc.total()) {
      // Can never fit: drop rather than block the queue forever.
      fifo.pop_front();
      ++done_jobs;
      continue;
    }
    std::vector<net::NodeId> nodes =
        alloc.allocate(job.work.ranks, job.placement);
    if (nodes.empty()) {
      // Strict FIFO: the head waits for departures; no backfill.
      co_await cv.wait();
      continue;
    }
    fifo.pop_front();
    results[idx].placed = true;
    results[idx].nodes = std::move(nodes);
    sim::spawn(run_job(idx));
  }
}

sim::CoTask<void> Runner::run_job(std::size_t idx) {
  const JobSpec& job = spec.jobs[idx];
  JobResult& res = results[idx];
  sim::Engine& eng = inst.engine();
  res.start = eng.now();

  if (spec.vcs > 1) {
    net::Network& net = inst.machine().network();
    for (net::NodeId nid : res.nodes) {
      net.set_service_class(
          nid, static_cast<std::uint8_t>(job.id % spec.vcs));
    }
  }

  if (workload::oneside::is_oneside(job.work.pattern)) {
    // Conduit-backed app tenant: the oneside driver owns rank bodies and
    // result folding; the job id namespaces its match bits so co-resident
    // tenants never cross-match.
    co_await workload::oneside::run_tenant(
        inst, job.work, static_cast<std::uint16_t>(job.id & 0xFFFF),
        &res.nodes, &res.work);
    co_await finish_job(idx);
    co_return;
  }

  const wd::Plan plan = wd::build_plan(job.work);
  wd::Ctx ctx;
  ctx.spec = &job.work;
  ctx.eng = &eng;
  ctx.pid = inst.proc(0).pid();
  ctx.rpc = job.work.pattern == workload::PatternKind::kRpc;
  ctx.pace = pace_for(job.work);
  ctx.node_of = &res.nodes;
  ctx.data_bits = (static_cast<ptl::MatchBits>(job.id) << 8) | 1u;
  ctx.reply_bits = (static_cast<ptl::MatchBits>(job.id) << 8) | 2u;

  const int ranks = job.work.ranks;
  std::vector<wd::RankState> st(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    wd::RankState& s = st[static_cast<std::size_t>(r)];
    s.proc = &inst.proc(res.nodes[static_cast<std::size_t>(r)]);
    s.slots = std::make_unique<sim::WaitQueue>(eng);
    wd::init_rank_state(s, plan, ctx, r);
  }

  sim::WaitQueue join(eng);
  int remaining = ranks;
  for (int r = 0; r < ranks; ++r) {
    sim::spawn(with_join(wd::setup_rank(st[static_cast<std::size_t>(r)], ctx),
                         remaining, join));
  }
  while (remaining > 0) co_await join.wait();

  ctx.t0 = eng.now();
  remaining = 0;
  for (int r = 0; r < ranks; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    ++remaining;
    sim::spawn(with_join(wd::pump_rank(st[u], ctx), remaining, join));
    if (!plan.send[u].dest.empty()) {
      ++remaining;
      sim::spawn(
          with_join(wd::send_rank(r, st[u], plan.send[u], ctx), remaining,
                    join));
    }
  }
  while (remaining > 0) co_await join.wait();

  res.work = wd::gather_result(st, ctx, plan, inst.machine().first_panic());
  co_await finish_job(idx);
}

/// Shared job epilogue: stamp the end time, record job.jN.* metrics,
/// release the allocation and wake the dispatcher.
sim::CoTask<void> Runner::finish_job(std::size_t idx) {
  const JobSpec& job = spec.jobs[idx];
  JobResult& res = results[idx];
  sim::Engine& eng = inst.engine();
  res.end = eng.now();

  telemetry::MetricsRegistry& reg = eng.metrics();
  const std::string ns = sim::strf("job.j%d.", job.id);
  reg.counter(ns + "sent").add(res.work.sent);
  reg.counter(ns + "delivered").add(res.work.delivered);
  reg.counter(ns + "dropped").add(res.work.dropped);
  reg.counter(ns + "replies").add(res.work.replies);
  reg.counter(ns + "queue_wait_ps")
      .add(static_cast<std::uint64_t>(res.queue_wait().to_ps()));
  if (reg.sampling()) {
    telemetry::Histogram& h = reg.histogram(ns + "latency_ps");
    for (std::uint64_t v : res.work.latency_ps) h.record(v);
  }

  alloc.release(res.nodes);
  ++done_jobs;
  cv.notify_all();
  co_return;
}

}  // namespace

ClusterResult run_cluster(const ClusterSpec& spec) {
  const net::Shape shape = harness::shape_for_ranks(spec.nodes);
  const int machine_nodes = shape.count();

  harness::Scenario sc;
  sc.with_shape(shape);
  ss::Config cfg = spec.config;
  cfg.net.routing = spec.routing;
  cfg.net.link.vcs = spec.vcs;
  sc.with_config(cfg).with_seed(spec.seed);
  sc.telemetry.sampling = spec.sampling;
  sc.telemetry.trace = spec.trace;
  sc.telemetry.provenance = spec.trace;
  sc.telemetry.profile = spec.profile;
  for (int n = 0; n < machine_nodes; ++n) {
    sc.add_proc(static_cast<net::NodeId>(n), 10, 16u << 20);
  }
  std::unique_ptr<harness::Instance> inst = sc.build();
  sim::Engine& eng = inst->engine();

  Runner runner(spec, *inst, machine_nodes);
  for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
    runner.results[i].id = spec.jobs[i].id;
    runner.results[i].arrival = spec.jobs[i].arrival;
  }

  // Arrivals in (arrival, id) order so same-instant jobs enqueue FIFO by
  // id (the engine runs same-time events in schedule order).
  std::vector<std::size_t> order(spec.jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (spec.jobs[a].arrival != spec.jobs[b].arrival) {
      return spec.jobs[a].arrival < spec.jobs[b].arrival;
    }
    return spec.jobs[a].id < spec.jobs[b].id;
  });
  eng.tag_category(telemetry::Cat::kCluster);
  for (std::size_t idx : order) {
    eng.schedule_after(spec.jobs[idx].arrival, [&runner, idx] {
      runner.fifo.push_back(idx);
      runner.cv.notify_all();
    });
  }
  sim::spawn(runner.dispatcher());
  inst->run();
  assert(runner.done_jobs == static_cast<int>(spec.jobs.size()));

  ClusterResult out;
  out.machine_nodes = machine_nodes;
  out.jobs = std::move(runner.results);
  double busy_node_ps = 0.0;
  for (const JobResult& j : out.jobs) {
    if (!j.placed) continue;
    if (j.end > out.makespan) out.makespan = j.end;
    busy_node_ps += static_cast<double>(j.nodes.size()) *
                    static_cast<double>((j.end - j.start).to_ps());
  }
  if (!out.makespan.is_zero()) {
    out.utilization = busy_node_ps / (static_cast<double>(machine_nodes) *
                                      static_cast<double>(out.makespan.to_ps()));
  }
  out.adaptive_deflections =
      inst->machine().network().adaptive_deflections();
  if (spec.trace) {
    if (inst->trace() != nullptr) {
      out.trace_records = inst->trace()->records();
    }
    if (inst->provenance() != nullptr) {
      out.provenance = std::move(*inst->provenance());
    }
  }
  if (spec.profile && inst->profiler() != nullptr) {
    out.profile = *inst->profiler();
  }
  return out;
}

}  // namespace xt::cluster
