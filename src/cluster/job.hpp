#pragma once

// Job descriptions for the multi-tenant scheduler.
//
// A job is one workload::WorkloadSpec (pattern, ranks, load, seed) plus a
// placement policy and an arrival time.  The cluster runs a *trace* of
// jobs — either hand-built (bench interference matrices pin two jobs at
// t=0) or drawn from a Poisson process over a job mix (the SLO-vs-
// utilization sweeps).  Traces are pure functions of their spec, so a
// cluster run is reproducible from (ClusterSpec) alone and byte-identical
// across --jobs values.

#include <cstdint>
#include <vector>

#include "cluster/placement.hpp"
#include "net/network.hpp"
#include "seastar/config.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/provenance.hpp"
#include "workload/generator.hpp"

namespace xt::cluster {

/// One job the scheduler will run.
struct JobSpec {
  int id = 0;
  /// Absolute arrival time (engine time; traffic of earlier jobs may
  /// already be in flight).
  sim::Time arrival{};
  workload::WorkloadSpec work{};
  Placement placement = Placement::kContiguous;
};

/// What happened to one job.
struct JobResult {
  int id = 0;
  /// False when the job could never be placed (more ranks than the machine
  /// has nodes); such a job is dropped, not queued forever.
  bool placed = false;
  sim::Time arrival{};
  sim::Time start{};  ///< dispatch time; start - arrival is the queue wait
  sim::Time end{};    ///< all of the job's expected events observed
  std::vector<net::NodeId> nodes;  ///< rank i ran on nodes[i]
  workload::WorkloadResult work{};

  sim::Time queue_wait() const { return start - arrival; }
};

/// The whole multi-tenant run.
struct ClusterSpec {
  /// Minimum machine size; the actual machine is the near-cubic
  /// power-of-two torus holding at least this many nodes
  /// (harness::shape_for_ranks), every node carrying one process.
  int nodes = 64;
  std::vector<JobSpec> jobs;  ///< any order; dispatched FIFO by arrival
  /// Stack configuration for every node.  config.net.routing and
  /// config.net.link.vcs are overwritten from the two fields below.
  ss::Config config{};
  net::Routing routing = net::Routing::kDimOrder;
  /// Virtual channels per link; >1 turns on round-robin service-class
  /// arbitration, with each job mapped to class (id % vcs).
  int vcs = 1;
  /// Seed for the cluster's own streams (random placement); job traffic
  /// seeds live in each JobSpec's work.seed.
  std::uint64_t seed = 1;
  /// Record per-job latency histograms (job.jN.latency_ps) too.
  bool sampling = false;
  /// Collect the machine's Chrome-trace records and per-message
  /// provenance waterfalls (ClusterResult::trace_records / provenance).
  bool trace = false;
  /// Self-profile the engine (ClusterResult::profile).
  bool profile = false;
};

struct ClusterResult {
  std::vector<JobResult> jobs;  ///< in JobSpec order
  int machine_nodes = 0;        ///< actual torus size after rounding
  sim::Time makespan{};         ///< last job end
  /// Node-seconds occupied by placed jobs over machine capacity through
  /// the makespan — the utilization axis of the SLO curves.
  double utilization = 0.0;
  std::uint64_t adaptive_deflections = 0;
  /// Populated when spec.trace: the whole machine's timeline + message
  /// waterfalls (feed telemetry::export_chrome_trace).
  std::vector<sim::Trace::Record> trace_records;
  telemetry::ProvenanceLog provenance;
  /// Populated when spec.profile.
  telemetry::Profiler profile;
};

/// One entry of a job mix for trace generation.
struct JobTemplate {
  workload::WorkloadSpec work{};
  Placement placement = Placement::kContiguous;
};

/// Poisson arrival trace over a job mix.
struct TraceSpec {
  int jobs = 8;
  /// Mean arrival rate (jobs per second of simulated time).
  double arrival_rate_per_sec = 1000.0;
  /// Cycled deterministically: job i uses mix[i % mix.size()].
  std::vector<JobTemplate> mix;
  std::uint64_t seed = 1;
};

/// Expands a TraceSpec into concrete JobSpecs: exponential interarrivals
/// from the trace seed, each job's work.seed forked in job order (so jobs
/// sharing a template still draw independent traffic).  Pure function.
std::vector<JobSpec> poisson_trace(const TraceSpec& trace);

}  // namespace xt::cluster
