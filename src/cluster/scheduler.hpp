#pragma once

// The multi-tenant cluster runner: FIFO job scheduler over one machine.
//
// run_cluster() builds a single Instance covering the whole torus (one
// process per node), schedules every job's arrival on the engine clock, and
// runs a FIFO dispatcher coroutine: the head-of-queue job waits until the
// allocator can place its ranks (strict FIFO — no backfill, so queue waits
// are easy to reason about), then runs its workload on its own node set
// while other jobs' traffic shares the wires.  Space sharing only: a node
// runs at most one job at a time, as on the real machine's compute
// partition.
//
// Isolation mechanics:
//   * each job gets its own match-bit namespace ((id << 8) | 1 for data,
//     | 2 for replies), so retained MEs from a departed job on a reused
//     node can never match a new job's traffic;
//   * each job's ranks are virtual — patterns are built over the job's own
//     near-cubic topology and mapped to physical nodes through the
//     placement (detail::Ctx::node_of);
//   * with vcs > 1, job id → service class (id % vcs), so per-VC link
//     arbitration bounds how much queueing one job can impose on another.
//
// Everything runs in one engine, single-threaded: results are
// byte-identical for a given ClusterSpec regardless of --jobs.

#include "cluster/job.hpp"

namespace xt::cluster {

/// Runs the whole trace to completion and gathers per-job results plus
/// machine-level utilization.  Per-job telemetry lands in the engine's
/// registry under "job.jN." (counters always; latency histograms when
/// spec.sampling).
ClusterResult run_cluster(const ClusterSpec& spec);

}  // namespace xt::cluster
