#pragma once

// Node placement for multi-tenant runs.
//
// The scheduler asks the allocator for `n` free nodes under a policy; the
// returned vector IS the job's rank→node map (rank i runs on nodes[i]), so
// policy choice shapes both which links jobs share and how far a job's own
// neighbors sit apart:
//   kContiguous  lowest-id run of n consecutive free nodes (the z-major
//                curve keeps consecutive ids physically adjacent), falling
//                back to the n lowest free ids when fragmentation has
//                destroyed every run — the compact, interference-minimizing
//                allocation of a space-shared torus (ROADMAP: the Cplant /
//                Red Storm allocator discipline);
//   kScattered   every k-th free node, k = free/n — maximal spread, the
//                worst case for path sharing between jobs and the classic
//                way allocation fragmentation degrades tails;
//   kRandom      a uniform draw (in draw order) from the free set.
//
// All three are pure functions of (free set, policy, rng state), so a
// cluster run is reproducible from its spec alone.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "net/coord.hpp"
#include "sim/rng.hpp"

namespace xt::cluster {

enum class Placement : std::uint8_t { kContiguous, kScattered, kRandom };

const char* placement_name(Placement p);
/// Parses "contiguous"/"block", "scattered"/"stride", or "random".
std::optional<Placement> placement_from_name(std::string_view name);

/// Free-list over the machine's nodes.  Not thread-safe (one per engine).
class NodeAllocator {
 public:
  NodeAllocator(int nodes, std::uint64_t seed);

  /// Picks `n` free nodes under `policy`; empty when fewer than n are
  /// free.  The order of the returned ids is the job's rank order.
  std::vector<net::NodeId> allocate(int n, Placement policy);
  void release(const std::vector<net::NodeId>& nodes);

  int free_count() const { return nfree_; }
  int total() const { return static_cast<int>(free_.size()); }

 private:
  std::vector<net::NodeId> free_ids() const;

  std::vector<bool> free_;
  int nfree_ = 0;
  sim::Rng rng_;
};

}  // namespace xt::cluster
