#include "cluster/job.hpp"

#include <cassert>
#include <cmath>

namespace xt::cluster {

std::vector<JobSpec> poisson_trace(const TraceSpec& trace) {
  assert(!trace.mix.empty());
  assert(trace.arrival_rate_per_sec > 0.0);
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(trace.jobs));
  sim::Rng seeder(trace.seed);
  sim::Rng arrivals(seeder.u64());
  double t = 0.0;
  for (int i = 0; i < trace.jobs; ++i) {
    const JobTemplate& tpl = trace.mix[static_cast<std::size_t>(i) %
                                       trace.mix.size()];
    JobSpec job;
    job.id = i;
    t += -std::log1p(-arrivals.uniform01()) / trace.arrival_rate_per_sec;
    job.arrival =
        sim::Time::ps(static_cast<std::int64_t>(std::llround(t * 1e12)));
    job.work = tpl.work;
    job.work.seed = seeder.u64();  // forked in job order
    job.placement = tpl.placement;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace xt::cluster
