#include "host/live_cluster.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <thread>

namespace xt::host {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t elapsed_ps(Clock::time_point epoch) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
             .count() *
         1000;
}

/// How often the driver rebroadcasts its ctrl frame (barrier round + done
/// flag) and re-wakes barrier waiters.  Loss of any single ctrl frame is
/// healed within one tick.
constexpr std::int64_t kCtrlTickPs = sim::Time::ms(5).to_ps();
/// After local done && all peers done, keep serving the socket this long so
/// peers whose last data/ack needs a retransmit can still reach us.
constexpr std::int64_t kLingerPs = sim::Time::ms(25).to_ps();

struct RankState {
  bool app_done = false;
  std::exception_ptr app_error;
};

sim::CoTask<void> run_app(const LiveApp& body, LiveRank& r, RankState& s) {
  try {
    co_await body(r);
  } catch (...) {
    s.app_error = std::current_exception();
  }
  s.app_done = true;
}

}  // namespace

ss::Config live_udp_config() {
  ss::Config cfg;
  cfg.gobackn = true;
  // Sim-fabric values are tuned for ~1 µs wire RTTs; a loaded loopback
  // socket RTT is two to three orders of magnitude larger.  Retransmit
  // timers below the real RTT would resend messages that are merely slow.
  cfg.gobackn_timeout = sim::Time::ms(5);
  cfg.gobackn_backoff = sim::Time::ms(1);
  cfg.gobackn_backoff_max = sim::Time::ms(50);
  cfg.gobackn_max_rewinds = 200;
  return cfg;
}

sim::CoTask<void> LiveRank::barrier() {
  tp_.barrier_enter();
  while (!tp_.barrier_released()) {
    co_await tp_.ctrl_wq().wait();
  }
}

std::vector<LiveRankResult> run_live_cluster(const LiveOptions& opts,
                                             const LiveApp& app) {
  const int n = opts.ranks;
  transport::UdpFabric fabric(n, opts.udp);
  std::vector<LiveRankResult> results(static_cast<std::size_t>(n));
  const net::Shape shape = net::Shape::xt3(n, 1, 1);

  // Fixed before any thread launches: every rank measures wall time from
  // the same instant, so eng.now() is cross-rank comparable.
  const Clock::time_point epoch = Clock::now();

  auto rank_main = [&](int rank) {
    LiveRankResult& res = results[static_cast<std::size_t>(rank)];
    res.rank = rank;
    try {
      sim::Engine eng;
      transport::UdpTransport tp(eng, fabric,
                                 static_cast<net::NodeId>(rank), shape,
                                 opts.udp);
      // Let poll() stamp each delivery at its real arrival instant instead
      // of the (possibly stale) loop-top wall reading below.
      tp.set_wall_clock([epoch] { return elapsed_ps(epoch); });
      Node node(eng, opts.config, tp, static_cast<net::NodeId>(rank),
                opts.os);
      Process& proc = node.spawn_process(opts.pid);
      LiveRank lr(rank, n, opts.pid, eng, tp, node, proc);

      RankState st;
      sim::spawn(run_app(app, lr, st));

      const std::int64_t watchdog_ps =
          static_cast<std::int64_t>(opts.watchdog_sec * 1e12);
      std::int64_t next_ctrl_ps = 0;
      std::int64_t done_since_ps = -1;

      for (;;) {
        const std::int64_t wall = elapsed_ps(epoch);
        eng.run_until(sim::Time::ps(wall));
        const int got = tp.poll();

        if (wall >= next_ctrl_ps) {
          next_ctrl_ps = wall + kCtrlTickPs;
          if (st.app_done) tp.set_done();
          tp.broadcast_ctrl();
          // Barrier waiters re-check on every tick even if the releasing
          // ctrl frame itself was lost.
          tp.ctrl_wq().notify_all();
        }

        if (st.app_done && tp.peers_done()) {
          if (done_since_ps < 0) done_since_ps = wall;
          if (wall - done_since_ps > kLingerPs) break;
        } else {
          done_since_ps = -1;
        }
        if (wall > watchdog_ps) {
          res.error = "watchdog: rank exceeded wall-clock budget";
          break;
        }

        if (got == 0 && eng.next_event_time().to_ps() > elapsed_ps(epoch)) {
          // Idle: park on the socket until the next engine timer, the next
          // ctrl tick, or an arrival — whichever is first.
          const std::int64_t until =
              std::min(eng.next_event_time().to_ps(), next_ctrl_ps) -
              elapsed_ps(epoch);
          const int ms = static_cast<int>(
              std::clamp<std::int64_t>(until / 1'000'000'000, 0, 2));
          tp.wait_readable(ms);
        }
      }

      if (st.app_error) std::rethrow_exception(st.app_error);

      res.fw = node.firmware().counters();
      if (node.firmware().panicked()) res.panic = node.firmware().panic_reason();
      res.nic_msgs_sent = node.nic().msgs_sent();
      res.nic_msgs_received = node.nic().msgs_received();
      res.nic_crc_drops = node.nic().crc_drops();
      res.datagrams_sent = tp.datagrams_sent();
      res.datagrams_received = tp.datagrams_received();
      res.drops_injected = tp.drops_injected();
      res.send_failures = tp.send_failures();
      res.wall_seconds = static_cast<double>(elapsed_ps(epoch)) / 1e12;
    } catch (const std::exception& e) {
      res.error = e.what();
    } catch (...) {
      res.error = "unknown exception";
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) threads.emplace_back(rank_main, r);
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace xt::host
