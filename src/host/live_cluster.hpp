#pragma once

// Realtime multi-rank driver for the UDP loopback transport.
//
// Each rank is one real host thread owning a full stack instance — its own
// sim::Engine, UdpTransport, Node (NIC + firmware + kernel agent) and one
// Portals process.  The thread drives its engine in *wall-clock lockstep*:
// a shared steady_clock epoch is fixed before any thread starts, and every
// iteration runs `engine.run_until(elapsed-wall-time)`, so engine time IS
// wall time.  Everything stamped with eng.now() — telemetry, provenance,
// event latencies — therefore records wall-clock picoseconds on a timebase
// shared by all ranks, which is what makes sim-vs-live curves directly
// comparable (bench/xval).
//
// Between engine batches the thread drains its UDP socket (delivering
// arrivals into the firmware at the current wall instant) and, when the
// engine is idle, parks in ::poll() on the socket until the next timer or
// an arrival.  Run termination and the app-level barrier ride the
// transport's ctrl frames, rebroadcast every few milliseconds so control
// losses self-heal.

#include <functional>
#include <string>
#include <vector>

#include "firmware/firmware.hpp"
#include "host/node.hpp"
#include "sim/task.hpp"
#include "transport/udp_transport.hpp"

namespace xt::host {

/// Config preset for live UDP runs: the stock SeaStar timing model plus
/// go-back-n with timeouts rescaled from sim-fabric microseconds to
/// loopback-socket wall milliseconds (a loopback RTT under load is ~100 µs;
/// sub-RTT timeouts would retransmit messages that were never lost).
ss::Config live_udp_config();

struct LiveOptions {
  int ranks = 2;
  transport::UdpConfig udp{};
  ss::Config config = live_udp_config();
  OsType os = OsType::kCatamount;
  /// Portals pid every rank's process binds; rank r is ProcessId{r, pid}.
  ptl::Pid pid = 1;
  /// Per-rank wall-clock cap; exceeding it records an error and aborts the
  /// rank (a hung live run should fail loudly, not wedge CI).
  double watchdog_sec = 120.0;
};

struct LiveRankResult {
  int rank = 0;
  fw::Firmware::Counters fw{};
  std::uint64_t nic_msgs_sent = 0;
  std::uint64_t nic_msgs_received = 0;
  std::uint64_t nic_crc_drops = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t drops_injected = 0;
  std::uint64_t send_failures = 0;
  std::string panic;   ///< firmware panic reason, "" when healthy
  std::string error;   ///< driver-level failure (watchdog, exception)
  double wall_seconds = 0.0;

  bool ok() const { return panic.empty() && error.empty(); }
};

/// The per-rank context handed to the application coroutine.
class LiveRank {
 public:
  LiveRank(int rank, int ranks, ptl::Pid pid, sim::Engine& eng,
           transport::UdpTransport& tp, Node& node, Process& proc)
      : rank_(rank), ranks_(ranks), pid_(pid), eng_(eng), tp_(tp),
        node_(node), proc_(proc) {}

  int rank() const { return rank_; }
  int ranks() const { return ranks_; }
  sim::Engine& engine() { return eng_; }
  transport::UdpTransport& udp() { return tp_; }
  Node& node() { return node_; }
  Process& process() { return proc_; }
  ptl::ProcessId peer(int r) const {
    return ptl::ProcessId{static_cast<net::NodeId>(r), pid_};
  }

  /// Cluster-wide rendezvous over ctrl frames: enters the next barrier
  /// round and suspends until every peer has reached it.  Lost ctrl frames
  /// only delay release (the driver rebroadcasts periodically).
  sim::CoTask<void> barrier();

 private:
  int rank_;
  int ranks_;
  ptl::Pid pid_;
  sim::Engine& eng_;
  transport::UdpTransport& tp_;
  Node& node_;
  Process& proc_;
};

/// The application body one rank runs (e.g. one side of a ping-pong).
using LiveApp = std::function<sim::CoTask<void>(LiveRank&)>;

/// Runs `app` on every rank as real threads over UDP loopback; returns one
/// result per rank (in rank order) after all threads join.
std::vector<LiveRankResult> run_live_cluster(const LiveOptions& opts,
                                             const LiveApp& app);

}  // namespace xt::host
