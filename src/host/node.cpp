#include "host/node.hpp"

#include "host/accel.hpp"

#include "sim/strf.hpp"

namespace xt::host {

Process::Process(Node& node, ptl::Pid pid, std::size_t mem_bytes,
                 ProcMode mode)
    : node_(node), pid_(pid), mode_(mode) {
  const ss::Config& cfg = node.cfg_;
  as_ = std::make_unique<AddressSpace>(node.os(), mem_bytes,
                                       cfg.linux_page_size);
  if (mode == ProcMode::kAccel) {
    accel_ = std::make_unique<AccelAgent>(node, pid, *as_);
    api_ = std::make_unique<ptl::Api>(*accel_, cfg.host_api_call,
                                      cfg.host_cmd_build);
    return;
  }
  ptl::Library& lib = node.agent_.add_process(pid, *as_);
  // Bridge selection (§3.2): trap cost by OS; none for kernel clients.
  sim::Time crossing{};
  if (mode == ProcMode::kUser) {
    crossing = node.os() == OsType::kCatamount ? cfg.trap_catamount
                                               : cfg.trap_linux;
  }
  bridge_ =
      std::make_unique<KernelBridge>(node.eng_, node.cpu_, lib, crossing);
  api_ = std::make_unique<ptl::Api>(*bridge_, cfg.host_api_call,
                                    cfg.host_cmd_build);
}

Process::~Process() = default;

net::NodeId Process::nid() const { return node_.id(); }

Node::Node(sim::Engine& eng, const ss::Config& cfg, transport::Transport& tp,
           net::NodeId id, OsType os)
    : eng_(eng),
      cfg_(cfg),
      id_(id),
      os_(os),
      cpu_(eng, sim::strf("node%u.cpu", id)),
      nic_(eng, cfg, tp, id),
      fw_(eng, nic_, cfg),
      agent_(eng, cfg, fw_, cpu_, id, tp.shape()) {
  // Firmware process 0 is the generic Portals implementation in the kernel.
  const fw::FwProcId generic =
      fw_.register_process(fw::Firmware::ProcessOptions{});
  (void)generic;
  assert(generic == fw::kGenericProc);
}

Process& Node::spawn_process(ptl::Pid pid, std::size_t mem_bytes) {
  procs_.push_back(
      std::make_unique<Process>(*this, pid, mem_bytes, ProcMode::kUser));
  return *procs_.back();
}

Process& Node::spawn_kernel_process(ptl::Pid pid, std::size_t mem_bytes) {
  procs_.push_back(
      std::make_unique<Process>(*this, pid, mem_bytes, ProcMode::kKernel));
  return *procs_.back();
}

Process& Node::spawn_accel_process(ptl::Pid pid, std::size_t mem_bytes) {
  procs_.push_back(
      std::make_unique<Process>(*this, pid, mem_bytes, ProcMode::kAccel));
  return *procs_.back();
}

Machine::Machine(net::Shape shape, ss::Config cfg,
                 std::function<OsType(net::NodeId)> os_of)
    : cfg_(cfg), net_(eng_, shape, cfg.net, cfg.net.seed), tp_(net_) {
  nodes_.reserve(static_cast<std::size_t>(shape.count()));
  for (net::NodeId id = 0; id < static_cast<net::NodeId>(shape.count());
       ++id) {
    const OsType os = os_of ? os_of(id) : OsType::kCatamount;
    nodes_.push_back(std::make_unique<Node>(eng_, cfg_, tp_, id, os));
  }
}

std::string Machine::first_panic() const {
  for (const auto& n : nodes_) {
    const fw::Firmware& fw = n->firmware();
    if (fw.panicked()) {
      return sim::strf("node %u panicked: %s", n->id(),
                       fw.panic_reason().c_str());
    }
  }
  return {};
}

}  // namespace xt::host
