#pragma once

// The three bridges of §3.2.
//
//   * qkbridge — Catamount compute-node applications.  Every Portals API
//     call traps into the quintessential kernel (~75 ns) where the library
//     runs.
//   * ukbridge — Linux user-level applications.  Same structure, Linux
//     syscall cost.
//   * kbridge  — Linux kernel-level clients (e.g. the Lustre service):
//     caller is already in the kernel, so there is no crossing at all.
//
// ukbridge and kbridge coexist on one node by construction here — both are
// thin shims onto the same KernelAgent-resident library, which is exactly
// how the paper describes them sharing the library-to-network path.

#include "host/cpu.hpp"
#include "portals/bridge.hpp"

namespace xt::host {

/// Generic-mode bridge: crossing cost + kernel CPU time, then the closure
/// runs against the kernel-resident library.
class KernelBridge final : public ptl::Bridge {
 public:
  KernelBridge(sim::Engine& eng, Cpu& cpu, ptl::Library& lib,
               sim::Time crossing)
      : eng_(eng), cpu_(cpu), lib_(lib), crossing_(crossing) {}

  sim::CoTask<int> call(std::function<int(ptl::Library&)> fn,
                        sim::Time cost_hint) override {
    co_await cpu_.run_kernel(crossing_ + cost_hint);
    co_return fn(lib_);
  }

  ptl::Library& library() override { return lib_; }
  sim::Engine& engine() override { return eng_; }

 private:
  sim::Engine& eng_;
  Cpu& cpu_;
  ptl::Library& lib_;
  sim::Time crossing_;
};

}  // namespace xt::host
