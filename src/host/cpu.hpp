#pragma once

// The node's Opteron, as a priority resource.
//
// Interrupt handlers run at higher priority than application/library work:
// when the SeaStar raises an interrupt while the application holds the CPU,
// the handler is granted at the next scheduling boundary.  (Application
// work is charged in short quanta, so the boundary error is bounded by one
// quantum.)

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace xt::host {

class Cpu {
 public:
  static constexpr int kAppPriority = 0;
  static constexpr int kKernelPriority = 5;
  static constexpr int kIrqPriority = 10;

  explicit Cpu(sim::Engine& eng, std::string name)
      : res_(eng, std::move(name)) {}

  /// Application or library computation.
  sim::CoTask<void> run(sim::Time cost) {
    return res_.use(cost, kAppPriority);
  }
  /// Kernel-context work (bridged Portals calls).
  sim::CoTask<void> run_kernel(sim::Time cost) {
    return res_.use(cost, kKernelPriority);
  }
  /// Interrupt-context work.
  sim::CoTask<void> run_interrupt(sim::Time cost) {
    return res_.use(cost, kIrqPriority);
  }

  sim::Time busy_time() const { return res_.busy_time(); }
  bool busy() const { return res_.busy(); }

 private:
  sim::Resource res_;
};

}  // namespace xt::host
