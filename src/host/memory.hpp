#pragma once

// Process address spaces under the two XT3 operating systems (§3.3).
//
//   * Catamount maps virtually contiguous pages to physically contiguous
//     pages, so any buffer is ONE DMA segment and "a single command is
//     sufficient" for the network interface.
//   * Linux uses small (4 KB) pages with no such guarantee, so the host
//     must pin each page, translate it, and pre-compute one DMA command
//     per page before handing a transfer to the firmware.
//
// The simulation backs every address space with a real byte arena so
// payload integrity is verified end to end: the Tx DMA reads these bytes,
// they cross the simulated wire, and the Rx DMA writes them into the
// target's arena.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <span>
#include <vector>

#include "portals/nal.hpp"

namespace xt::host {

enum class OsType : std::uint8_t {
  kCatamount,  // lightweight compute-node kernel
  kLinux,      // service (and optionally compute) nodes
};

class AddressSpace final : public ptl::Memory {
 public:
  AddressSpace(OsType os, std::size_t size, std::size_t page_size)
      : os_(os), page_size_(page_size), mem_(size) {}

  /// Allocates `len` bytes (bump allocator; simulated processes never
  /// free).  Returns the virtual address.
  std::uint64_t alloc(std::size_t len, std::size_t align = 64) {
    brk_ = (brk_ + align - 1) / align * align;
    const std::uint64_t addr = brk_;
    brk_ += len;
    if (brk_ > mem_.size()) {
      throw std::length_error("simulated address space exhausted");
    }
    return addr;
  }

  // ptl::Memory
  bool valid(std::uint64_t addr, std::size_t len) const override {
    // Guard the sum: a descriptor near UINT64_MAX must not wrap addr + len
    // around past the arena size and validate.
    return len <= mem_.size() && addr <= mem_.size() - len;
  }
  void read(std::uint64_t addr, std::span<std::byte> out) const override {
    std::copy_n(mem_.begin() + static_cast<std::ptrdiff_t>(addr), out.size(),
                out.begin());
  }
  void write(std::uint64_t addr, std::span<const std::byte> in) override {
    std::copy_n(in.begin(), in.size(),
                mem_.begin() + static_cast<std::ptrdiff_t>(addr));
  }

  /// Number of DMA commands a transfer of [addr, addr+len) needs: 1 on
  /// Catamount (physically contiguous), one per touched page on Linux.
  std::uint32_t dma_segments(std::uint64_t addr, std::size_t len) const {
    if (os_ == OsType::kCatamount || len == 0) return 1;
    const std::uint64_t first = addr / page_size_;
    const std::uint64_t last = (addr + len - 1) / page_size_;
    return static_cast<std::uint32_t>(last - first + 1);
  }

  OsType os() const { return os_; }
  std::size_t page_size() const { return page_size_; }
  std::size_t size() const { return mem_.size(); }

 private:
  OsType os_;
  std::size_t page_size_;
  std::uint64_t brk_ = 64;  // keep address 0 unused
  std::vector<std::byte> mem_;
};

/// Reads `out.size()` bytes starting at linear offset `offset` of a
/// scatter/gather segment list (any contiguous IoVec sequence:
/// ptl::IoVecList, std::vector, arrays).
inline void gather_read(const AddressSpace& as,
                        std::span<const ptl::IoVec> segs,
                        std::size_t offset, std::span<std::byte> out) {
  std::size_t produced = 0;
  std::size_t pos = 0;
  for (const ptl::IoVec& seg : segs) {
    if (produced == out.size()) break;
    const std::size_t seg_end = pos + seg.length;
    if (offset < seg_end) {
      const std::size_t within = offset > pos ? offset - pos : 0;
      const std::size_t take =
          std::min<std::size_t>(seg.length - within, out.size() - produced);
      as.read(seg.start + within, out.subspan(produced, take));
      produced += take;
      offset += take;
    }
    pos = seg_end;
  }
}

/// Writes `in` across a scatter/gather segment list from its beginning.
inline void scatter_write(AddressSpace& as, std::span<const ptl::IoVec> segs,
                          std::span<const std::byte> in) {
  std::size_t consumed = 0;
  for (const ptl::IoVec& seg : segs) {
    if (consumed == in.size()) break;
    const std::size_t take =
        std::min<std::size_t>(seg.length, in.size() - consumed);
    as.write(seg.start, in.subspan(consumed, take));
    consumed += take;
  }
}

/// The kAtomicSum deposit: accumulates `in` into a scatter/gather list as
/// a sum of f64 values instead of overwriting.  Staged through a linear
/// copy because a segment boundary may split a double; any tail shorter
/// than 8 bytes is copied plainly.
inline void scatter_accumulate_f64(AddressSpace& as,
                                   std::span<const ptl::IoVec> segs,
                                   std::span<const std::byte> in) {
  std::vector<std::byte> cur(in.size());
  gather_read(as, segs, 0, cur);
  const std::size_t n8 = in.size() / 8 * 8;
  for (std::size_t i = 0; i < n8; i += 8) {
    double a = 0.0;
    double b = 0.0;
    std::memcpy(&a, cur.data() + i, 8);
    std::memcpy(&b, in.data() + i, 8);
    a += b;
    std::memcpy(&cur[i], &a, 8);
  }
  std::copy(in.begin() + static_cast<std::ptrdiff_t>(n8), in.end(),
            cur.begin() + static_cast<std::ptrdiff_t>(n8));
  scatter_write(as, segs, cur);
}

/// Total DMA commands a scatter/gather transfer needs (per-segment page
/// splitting on Linux; one per segment on Catamount).
inline std::uint32_t dma_segments_of(const AddressSpace& as,
                                     std::span<const ptl::IoVec> segs) {
  if (segs.empty()) return 1;
  std::uint32_t n = 0;
  for (const ptl::IoVec& seg : segs) {
    n += as.dma_segments(seg.start, seg.length);
  }
  return n;
}

}  // namespace xt::host
