#pragma once

// One XT3 node: Opteron + SeaStar + firmware + OS + Portals processes.

#include <memory>
#include <string>
#include <vector>

#include "firmware/firmware.hpp"
#include "host/bridges.hpp"
#include "host/cpu.hpp"
#include "host/kernel_agent.hpp"
#include "host/memory.hpp"
#include "portals/api.hpp"
#include "seastar/nic.hpp"
#include "transport/sim_transport.hpp"
#include "transport/transport.hpp"

namespace xt::host {

class Node;
class AccelAgent;

/// How a process reaches its Portals library (§3.2, §3.3).
enum class ProcMode : std::uint8_t {
  kUser,    // generic mode, qkbridge (Catamount) / ukbridge (Linux)
  kKernel,  // generic mode, kbridge (kernel-level client, e.g. Lustre)
  kAccel,   // accelerated mode: user-space library, firmware matching
};

/// A Portals process on a node.  Generic mode: its library lives in the
/// kernel agent, reached through a bridge chosen by the node's OS (qkbridge
/// on Catamount, ukbridge for Linux user processes, kbridge for
/// kernel-level clients).  Accelerated mode: the library is in user space
/// and the firmware performs matching.
class Process {
 public:
  Process(Node& node, ptl::Pid pid, std::size_t mem_bytes, ProcMode mode);
  ~Process();

  ptl::Api& api() { return *api_; }
  AddressSpace& memory() { return *as_; }
  ProcMode mode() const { return mode_; }
  ptl::Pid pid() const { return pid_; }
  net::NodeId nid() const;
  ptl::ProcessId id() const { return ptl::ProcessId{nid(), pid_}; }
  Node& node() { return node_; }

  /// Buffer helpers for applications.
  std::uint64_t alloc(std::size_t len, std::size_t align = 64) {
    return as_->alloc(len, align);
  }
  void write_bytes(std::uint64_t addr, std::span<const std::byte> in) {
    as_->write(addr, in);
  }
  void read_bytes(std::uint64_t addr, std::span<std::byte> out) const {
    as_->read(addr, out);
  }

 private:
  Node& node_;
  ptl::Pid pid_;
  ProcMode mode_;
  std::unique_ptr<AddressSpace> as_;
  std::unique_ptr<KernelBridge> bridge_;   // generic mode
  std::unique_ptr<AccelAgent> accel_;      // accelerated mode
  std::unique_ptr<ptl::Api> api_;
};

class Node {
 public:
  Node(sim::Engine& eng, const ss::Config& cfg, transport::Transport& tp,
       net::NodeId id, OsType os);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Creates a user-level Portals process (qkbridge / ukbridge by OS).
  Process& spawn_process(ptl::Pid pid,
                         std::size_t mem_bytes = 64 * 1024 * 1024);
  /// Creates a kernel-level Portals client (kbridge) — Linux only in the
  /// paper; allowed generally here.
  Process& spawn_kernel_process(ptl::Pid pid,
                                std::size_t mem_bytes = 64 * 1024 * 1024);
  /// Creates an accelerated-mode process (§3.3): user-space library,
  /// firmware-offloaded matching, no traps, no interrupts.  Catamount only.
  Process& spawn_accel_process(ptl::Pid pid,
                               std::size_t mem_bytes = 64 * 1024 * 1024);

  net::NodeId id() const { return id_; }
  OsType os() const { return os_; }
  Cpu& cpu() { return cpu_; }
  ss::Nic& nic() { return nic_; }
  fw::Firmware& firmware() { return fw_; }
  KernelAgent& agent() { return agent_; }
  const ss::Config& config() const { return cfg_; }
  sim::Engine& engine() { return eng_; }

 private:
  friend class Process;

  sim::Engine& eng_;
  const ss::Config& cfg_;
  net::NodeId id_;
  OsType os_;
  Cpu cpu_;
  ss::Nic nic_;
  fw::Firmware fw_;
  KernelAgent agent_;
  std::vector<std::unique_ptr<Process>> procs_;
};

/// A whole machine: engine + torus + nodes.  The top-level object examples
/// and benchmarks construct.
class Machine {
 public:
  /// `os_of(node_id)` selects each node's OS; default: all Catamount (the
  /// Red Storm compute partition).
  Machine(net::Shape shape, ss::Config cfg = {},
          std::function<OsType(net::NodeId)> os_of = nullptr);

  Node& node(net::NodeId id) { return *nodes_[id]; }
  std::size_t node_count() const { return nodes_.size(); }
  sim::Engine& engine() { return eng_; }
  net::Network& network() { return net_; }
  transport::Transport& transport() { return tp_; }
  const ss::Config& config() const { return cfg_; }

  /// Runs the simulation to quiescence; returns events executed.
  std::uint64_t run() { return eng_.run(); }

  /// First panicked node's "node N panicked: reason", or "" when every
  /// firmware is healthy — the per-run failure reason sweeps report
  /// instead of asserting.  Injected rank mortality counts too; callers
  /// that excuse it filter on the firmware's panic reason.
  std::string first_panic() const;

 private:
  ss::Config cfg_;
  sim::Engine eng_;
  net::Network net_;
  transport::SimTransport tp_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace xt::host
