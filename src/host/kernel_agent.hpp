#pragma once

// The generic-mode Portals implementation in the OS kernel (§3.1, §4.1).
//
// This is the host half of the paper's measured configuration: the Portals
// *library* runs in the kernel, and the SeaStar interrupts the host for
// every new message header (matching on the host) and again for every
// completion.  The agent:
//
//   * owns one Library instance per local Portals process,
//   * implements the library's Nal seam by turning sends into firmware
//     mailbox commands (allocating host-managed TX pendings, building
//     header packets — with the <= 12-byte inline-payload optimization —
//     and pre-computing per-page DMA programs on Linux),
//   * is the node's interrupt handler: one invocation drains ALL events in
//     the generic firmware EQ ("In order to reduce the number of
//     interrupts, the Portals interrupt handler processes all of the new
//     events ... each time it is invoked").

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "firmware/firmware.hpp"
#include "host/cpu.hpp"
#include "host/memory.hpp"
#include "portals/library.hpp"
#include "seastar/config.hpp"
#include "sim/task.hpp"

namespace xt::host {

class KernelAgent {
 public:
  KernelAgent(sim::Engine& eng, const ss::Config& cfg, fw::Firmware& fw,
              Cpu& cpu, net::NodeId self, const net::Shape& shape);
  ~KernelAgent();

  /// Registers a local Portals process (its library lives here, in the
  /// kernel).  `as` must outlive the agent.
  ptl::Library& add_process(ptl::Pid pid, AddressSpace& as);

  ptl::Library* lib_for(ptl::Pid pid);
  AddressSpace* as_for(ptl::Pid pid);

  /// Wired to the firmware's interrupt line.
  void on_interrupt();

  /// Interrupt-handler invocations (not raised lines; coalescing means
  /// this can be lower than the firmware's interrupt counter).  Reads the
  /// registry-backed "agent.nN.interrupts_serviced" counter.
  std::uint64_t irq_invocations() const { return c_irq_->value; }

 private:
  /// The per-process Nal implementation handed to each Library.
  class ProcNal final : public ptl::Nal {
   public:
    ProcNal(KernelAgent& agent, ptl::Pid pid) : agent_(agent), pid_(pid) {}
    int send(TxKind kind, std::uint32_t dst_nid, const ptl::WireHeader& hdr,
             ptl::IoVecList payload, std::uint64_t token) override;
    std::uint32_t nid() const override { return agent_.self_; }
    int distance(std::uint32_t nid) const override;

   private:
    KernelAgent& agent_;
    ptl::Pid pid_;
  };

  struct ProcRec {
    ptl::Pid pid = 0;
    AddressSpace* as = nullptr;
    std::unique_ptr<ProcNal> nal;
    std::unique_ptr<ptl::Library> lib;
  };

  struct TxRec {
    ptl::Nal::TxKind kind = ptl::Nal::TxKind::kPut;
    std::uint64_t token = 0;
    ptl::Pid pid = 0;
  };
  struct RxRec {
    std::uint64_t token = 0;
    ptl::Pid pid = 0;
  };

  /// Common transmit path for puts/gets (library-initiated) and
  /// replies/acks (agent-initiated).  Allocates the TX pending
  /// synchronously; the CPU cost and the mailbox write happen in a spawned
  /// kernel task so callers do not block.
  int send_message(ptl::Pid src_pid, ptl::Nal::TxKind kind,
                   std::uint32_t dst_nid, ptl::WireHeader hdr,
                   ptl::IoVecList payload, std::uint64_t token);
  sim::CoTask<void> tx_post_task(fw::PendingId pd, ptl::Pid src_pid,
                                 std::uint32_t dst_nid, ptl::WireHeader hdr,
                                 ptl::IoVecList payload,
                                 std::uint64_t prov);

  sim::CoTask<void> irq_task();
  sim::CoTask<void> handle_event(fw::FwEvent ev);
  sim::CoTask<void> handle_rx_header(fw::PendingId pending);
  void finish_inline(ptl::Library& lib, AddressSpace& as,
                     const ptl::Library::RxDecision& d,
                     const fw::UpperPending& up, bool atomic);
  void send_ack_if_any(ptl::Pid pid, std::uint32_t dst_nid,
                       const std::optional<ptl::WireHeader>& ack);
  void release(fw::PendingId pending);

  sim::Engine& eng_;
  const ss::Config& cfg_;
  fw::Firmware& fw_;
  Cpu& cpu_;
  net::NodeId self_;
  const net::Shape& shape_;

  std::vector<ProcRec> procs_;
  std::unordered_map<fw::PendingId, TxRec> tx_map_;
  std::unordered_map<fw::PendingId, RxRec> rx_map_;

  bool irq_active_ = false;
  /// Registry instruments ("agent.nN.*"): handler invocations and the
  /// events-drained-per-invocation distribution (coalescing visibility).
  telemetry::Counter* c_irq_ = nullptr;
  telemetry::Histogram* h_events_per_irq_ = nullptr;
};

}  // namespace xt::host
