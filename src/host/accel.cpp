#include "host/accel.hpp"

#include <algorithm>
#include <cassert>

#include "host/node.hpp"
#include "net/routing.hpp"
#include "sim/strf.hpp"
#include "telemetry/hooks.hpp"

namespace xt::host {

using ptl::WireHeader;
using ptl::WireOp;
using sim::CoTask;
using sim::Time;
using telemetry::Stage;
using telemetry::prov_stamp;

AccelAgent::AccelAgent(Node& node, ptl::Pid pid, AddressSpace& as)
    : node_(node), pid_(pid), as_(as) {
  assert(node.os() == OsType::kCatamount &&
         "accelerated mode requires physically contiguous memory (§3.3)");
  ptl::Library::Config lcfg;
  lcfg.id = ptl::ProcessId{node.id(), pid};
  lib_ = std::make_unique<ptl::Library>(node.engine(), lcfg, *this, as);
  fw::Firmware::ProcessOptions opts;
  opts.accelerated = true;
  opts.matcher = this;
  fwproc_ = node.firmware().register_process(opts);
  node.firmware().bind_pid(pid, fwproc_);
  auto& reg = node.engine().metrics();
  const std::string pre = sim::strf("accel.n%u.", node.id());
  c_ct_waits_ = &reg.counter(pre + "ct_waits");
  c_ct_wait_wakeups_ = &reg.counter(pre + "ct_wait_wakeups");
  sim::spawn(pump());
}

AccelAgent::~AccelAgent() = default;

sim::Engine& AccelAgent::engine() { return node_.engine(); }
std::uint32_t AccelAgent::nid() const { return node_.id(); }
int AccelAgent::distance(std::uint32_t nid) const {
  return net::hop_count(node_.nic().transport().shape(), node_.id(), nid);
}

CoTask<int> AccelAgent::call(std::function<int(ptl::Library&)> fn,
                             Time cost_hint) {
  co_await node_.cpu().run(cost_hint);
  co_await drain();  // "polling when the user-level library is entered"
  co_return fn(*lib_);
}

int AccelAgent::send(TxKind kind, std::uint32_t dst_nid,
                     const WireHeader& hdr, ptl::IoVecList payload,
                     std::uint64_t token) {
  const fw::PendingId pd =
      node_.firmware().host_alloc_tx_pending(fwproc_);
  if (pd == fw::kNoPending) return ptl::PTL_NO_SPACE;
  tx_map_[pd] = TxRec{kind, token};
  std::uint64_t prov = 0;
  if (node_.engine().provenance_enabled() &&
      (kind == TxKind::kPut || kind == TxKind::kReply)) {
    std::uint32_t len = 0;
    for (const ptl::IoVec& v : payload) len += v.length;
    prov = telemetry::prov_begin(node_.engine(), node_.id(), dst_nid, len);
  }
  sim::spawn(tx_post_task(pd, dst_nid, hdr, std::move(payload), prov));
  return ptl::PTL_OK;
}

CoTask<void> AccelAgent::tx_post_task(fw::PendingId pd,
                                      std::uint32_t dst_nid, WireHeader hdr,
                                      ptl::IoVecList payload,
                                      std::uint64_t prov) {
  node_.engine().tag_category(telemetry::Cat::kAgent,
                              static_cast<int>(node_.id()));
  const ss::Config& cfg = node_.config();
  // User-level command construction — no trap, no kernel.
  co_await node_.cpu().run(cfg.host_cmd_build);
  std::uint32_t payload_len = 0;
  for (const ptl::IoVec& v : payload) payload_len += v.length;
  const bool is_inline = payload_len <= cfg.inline_payload_max;
  fw::UpperPending& up = node_.firmware().upper(fwproc_, pd);
  std::vector<std::byte> inline_bytes;
  if (is_inline && payload_len > 0) {
    inline_bytes.resize(payload_len);
    gather_read(as_, payload, 0, inline_bytes);
  }
  up.header_packet = ptl::make_header_packet(hdr, inline_bytes);

  fw::TxCommand cmd;
  cmd.pending = pd;
  cmd.dst = dst_nid;
  cmd.prov = prov;
  cmd.payload_bytes = is_inline ? 0 : payload_len;
  // Catamount buffers are physically contiguous: one DMA command per
  // scatter/gather segment.
  cmd.n_dma_cmds =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(payload.size()));
  if (cmd.payload_bytes > 0) {
    AddressSpace* as = &as_;
    auto segs =
        std::make_shared<ptl::IoVecList>(std::move(payload));
    cmd.reader = [as, segs](std::size_t off, std::span<std::byte> out) {
      gather_read(*as, *segs, off, out);
    };
  }
  node_.firmware().post_command(fwproc_, std::move(cmd));
}

void AccelAgent::send_ack(std::uint32_t dst_nid, const WireHeader& ack) {
  if (send(TxKind::kAck, dst_nid, ack, {}, 0) == ptl::PTL_NO_SPACE) {
    deferred_acks_.emplace_back(dst_nid, ack);
  }
}

std::optional<fw::AccelMatcher::Result> AccelAgent::fw_match(
    const WireHeader& hdr, fw::PendingId pending,
    std::size_t& entries_walked) {
  entries_walked = 1;
  if (hdr.op == WireOp::kAck) {
    // The firmware writes the completion notification directly into
    // process space — no pending, no deposit.
    lib_->on_ack(hdr);
    return std::nullopt;
  }
  const bool atomic = hdr.op == WireOp::kAtomicSum;
  const ptl::Library::RxDecision d =
      (hdr.op == WireOp::kPut || atomic) ? lib_->on_put_header(hdr)
                                         : lib_->on_reply_header(hdr);
  entries_walked = std::max<std::size_t>(d.entries_walked, 1);
  if (!d.deliver) return std::nullopt;
  Result r;
  r.mlength = d.mlength;
  r.n_dma_cmds =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(d.segments.size()));
  if (d.mlength > 0) {
    AddressSpace* as = &as_;
    auto segs = std::make_shared<ptl::IoVecList>(d.segments);
    if (atomic) {
      r.deposit = [as, segs](std::span<const std::byte> bytes) {
        scatter_accumulate_f64(*as, *segs, bytes);
      };
    } else {
      r.deposit = [as, segs](std::span<const std::byte> bytes) {
        scatter_write(*as, *segs, bytes);
      };
    }
  }
  if (d.ct.valid()) {
    r.ct_id = static_cast<fw::CtId>(d.ct.idx);
    if (d.eqless) {
      // CT-counted deposit into an EQ-less MD: the firmware completes the
      // reception itself and the host never sees it — the offload
      // collective data path.  Retire the library's op record NOW (there
      // is no event to post); if the initiator asked for an ack, send it
      // through the normal user-level path.
      r.fw_complete = true;
      if (auto ack = lib_->deposited(d.token); ack.has_value()) {
        send_ack(hdr.src_nid, *ack);
      }
      return r;
    }
  }
  rx_map_[pending] = d.token;
  return r;
}

// ------------------- counting events + triggered operations ------------

int AccelAgent::ct_alloc(ptl::CtHandle* out) {
  const fw::CtId id = node_.firmware().host_ct_alloc(fwproc_);
  if (id == fw::kNoCt) return ptl::PTL_NO_SPACE;
  *out = ptl::CtHandle{id, 1};
  return ptl::PTL_OK;
}

int AccelAgent::ct_free(ptl::CtHandle ct) {
  if (!ct.valid()) return ptl::PTL_HANDLE_INVALID;
  node_.firmware().host_ct_free(fwproc_, static_cast<fw::CtId>(ct.idx));
  return ptl::PTL_OK;
}

int AccelAgent::ct_get(ptl::CtHandle ct, std::uint64_t* value) {
  if (!ct.valid()) return ptl::PTL_HANDLE_INVALID;
  *value = node_.firmware().host_ct_get(fwproc_,
                                        static_cast<fw::CtId>(ct.idx));
  return ptl::PTL_OK;
}

int AccelAgent::ct_set(ptl::CtHandle ct, std::uint64_t value) {
  if (!ct.valid()) return ptl::PTL_HANDLE_INVALID;
  node_.firmware().host_ct_set(fwproc_, static_cast<fw::CtId>(ct.idx),
                               value);
  return ptl::PTL_OK;
}

int AccelAgent::ct_inc(ptl::CtHandle ct, std::uint64_t inc) {
  if (!ct.valid()) return ptl::PTL_HANDLE_INVALID;
  fw::CtCommand cmd;
  cmd.ct = static_cast<fw::CtId>(ct.idx);
  cmd.inc = inc;
  node_.firmware().post_command(fwproc_, cmd);
  return ptl::PTL_OK;
}

sim::CoTask<int> AccelAgent::ct_wait(ptl::CtHandle ct,
                                     std::uint64_t threshold,
                                     std::uint64_t* value) {
  if (!ct.valid()) co_return ptl::PTL_HANDLE_INVALID;
  fw::Firmware& fw = node_.firmware();
  const fw::CtId id = static_cast<fw::CtId>(ct.idx);
  c_ct_waits_->add();
  while (fw.host_ct_get(fwproc_, id) < threshold) {
    c_ct_wait_wakeups_->add();
    co_await fw.ct_waiters(fwproc_).wait();
  }
  if (value != nullptr) *value = fw.host_ct_get(fwproc_, id);
  co_return ptl::PTL_OK;
}

int AccelAgent::triggered_put(ptl::MdHandle md, std::uint64_t offset,
                              std::uint32_t len, ptl::ProcessId target,
                              std::uint32_t pt_index, std::uint32_t ac_index,
                              ptl::MatchBits mbits,
                              std::uint64_t remote_offset,
                              std::uint64_t hdr_data, bool atomic,
                              ptl::CtHandle trig_ct,
                              std::uint64_t threshold) {
  if (!trig_ct.valid()) return ptl::PTL_HANDLE_INVALID;
  ptl::IoVecList segs;
  if (int rc = lib_->md_segments(md, offset, len, &segs);
      rc != ptl::PTL_OK) {
    return rc;
  }

  fw::TriggeredOp op;
  op.kind = fw::TriggeredOp::Kind::kPut;
  op.trig_ct = static_cast<fw::CtId>(trig_ct.idx);
  op.threshold = threshold;
  op.dst = target.nid;
  // Fire-and-forget header: md_id/md_gen stay 0, so the initiator library
  // has no op record and generates no SEND/ACK events for the launch.
  ptl::WireHeader hdr;
  hdr.op = atomic ? WireOp::kAtomicSum : WireOp::kPut;
  hdr.ack_req = ptl::AckReq::kNone;
  hdr.src_nid = node_.id();
  hdr.src_pid = pid_;
  hdr.dst_pid = target.pid;
  hdr.pt_index = static_cast<std::uint8_t>(pt_index);
  hdr.ac_index = static_cast<std::uint8_t>(ac_index);
  hdr.match_bits = mbits;
  hdr.remote_offset = remote_offset;
  hdr.length = len;
  hdr.hdr_data = hdr_data;
  op.hdr = hdr;
  op.payload_bytes = len;
  op.n_dma_cmds =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(segs.size()));
  if (len > 0) {
    AddressSpace* as = &as_;
    auto sp = std::make_shared<ptl::IoVecList>(std::move(segs));
    op.reader = [as, sp](std::size_t off, std::span<std::byte> out) {
      gather_read(*as, *sp, off, out);
    };
  }
  if (!node_.firmware().host_add_trigger(fwproc_, std::move(op))) {
    return ptl::PTL_NO_SPACE;
  }
  return ptl::PTL_OK;
}

int AccelAgent::triggered_ct_inc(ptl::CtHandle trig_ct,
                                 std::uint64_t threshold,
                                 ptl::CtHandle target_ct,
                                 std::uint64_t inc) {
  if (!trig_ct.valid() || !target_ct.valid()) return ptl::PTL_HANDLE_INVALID;
  fw::TriggeredOp op;
  op.kind = fw::TriggeredOp::Kind::kCtInc;
  op.trig_ct = static_cast<fw::CtId>(trig_ct.idx);
  op.threshold = threshold;
  op.target_ct = static_cast<fw::CtId>(target_ct.idx);
  op.inc = inc;
  if (!node_.firmware().host_add_trigger(fwproc_, std::move(op))) {
    return ptl::PTL_NO_SPACE;
  }
  return ptl::PTL_OK;
}

int AccelAgent::rearm_triggers() {
  node_.firmware().host_rearm_triggers(fwproc_);
  return ptl::PTL_OK;
}

int AccelAgent::reset_triggers() {
  node_.firmware().host_reset_triggers(fwproc_);
  return ptl::PTL_OK;
}

std::size_t AccelAgent::triggers_armed() const {
  return node_.firmware().triggers_armed(fwproc_);
}

std::optional<fw::AccelMatcher::ReplyProg> AccelAgent::fw_get(
    const WireHeader& hdr, fw::PendingId pending,
    std::size_t& entries_walked) {
  const ptl::Library::GetDecision gd = lib_->on_get_header(hdr);
  entries_walked = std::max<std::size_t>(gd.entries_walked, 1);
  if (!gd.deliver) return std::nullopt;
  rx_map_[pending] = gd.token;
  ReplyProg prog;
  prog.mlength = gd.mlength;
  prog.n_dma_cmds = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(gd.segments.size()));
  prog.reply_header = gd.reply_header;
  if (gd.mlength > 0) {
    AddressSpace* as = &as_;
    auto segs = std::make_shared<ptl::IoVecList>(gd.segments);
    prog.reader = [as, segs](std::size_t off, std::span<std::byte> out) {
      gather_read(*as, *segs, off, out);
    };
  }
  return prog;
}

CoTask<void> AccelAgent::drain() {
  if (draining_) co_return;  // single logical poller
  draining_ = true;
  fw::FwEventQueue& q = node_.firmware().event_queue(fwproc_);
  for (;;) {
    auto ev = q.poll();
    if (!ev.has_value()) break;
    co_await handle(*ev);
  }
  draining_ = false;
}

CoTask<void> AccelAgent::handle(fw::FwEvent ev) {
  const ss::Config& cfg = node_.config();
  co_await node_.cpu().run(cfg.host_event_post);
  switch (ev.type) {
    case fw::FwEvent::Type::kTxComplete: {
      auto it = tx_map_.find(ev.pending);
      if (it != tx_map_.end()) {
        const TxRec rec = it->second;
        tx_map_.erase(it);
        if (rec.kind == TxKind::kPut) lib_->send_complete(rec.token);
        node_.firmware().host_free_tx_pending(fwproc_, ev.pending);
        while (!deferred_acks_.empty()) {
          const auto [dst, hdr] = deferred_acks_.front();
          deferred_acks_.pop_front();
          if (send(TxKind::kAck, dst, hdr, {}, 0) == ptl::PTL_NO_SPACE) {
            deferred_acks_.emplace_front(dst, hdr);
            break;  // still full; the next kTxComplete retries
          }
        }
      }
      break;
    }
    case fw::FwEvent::Type::kRxComplete: {
      auto it = rx_map_.find(ev.pending);
      if (it != rx_map_.end()) {
        const std::uint64_t token = it->second;
        rx_map_.erase(it);
        const fw::UpperPending& up =
            node_.firmware().upper(fwproc_, ev.pending);
        if (up.msg) {
          prov_stamp(node_.engine(), up.msg->prov_id, Stage::kHostDeliver);
        }
        auto ack = lib_->deposited(token);
        if (ack.has_value()) {
          // Route the ack back through the normal user-level send path;
          // the initiator's node id is in the received header, still
          // sitting in the upper pending.
          const WireHeader in = ptl::unpack_header(
              node_.firmware().upper(fwproc_, ev.pending).header_packet);
          send_ack(in.src_nid, *ack);
        }
      }
      node_.firmware().post_command(fwproc_,
                                    fw::ReleaseCommand{ev.pending});
      break;
    }
    case fw::FwEvent::Type::kRxHeader: {
      // Accelerated GET: the firmware already transmitted the reply; this
      // event retires the target-side op (GET_END).
      auto it = rx_map_.find(ev.pending);
      if (it != rx_map_.end()) {
        lib_->reply_sent(it->second);
        rx_map_.erase(it);
      }
      node_.firmware().post_command(fwproc_,
                                    fw::ReleaseCommand{ev.pending});
      break;
    }
    case fw::FwEvent::Type::kRxDropped: {
      auto it = rx_map_.find(ev.pending);
      if (it != rx_map_.end()) {
        lib_->rx_dropped(it->second);
        rx_map_.erase(it);
      }
      node_.firmware().post_command(fwproc_,
                                    fw::ReleaseCommand{ev.pending});
      break;
    }
  }
}

CoTask<void> AccelAgent::pump() {
  node_.engine().tag_category(telemetry::Cat::kAgent,
                              static_cast<int>(node_.id()));
  fw::FwEventQueue& q = node_.firmware().event_queue(fwproc_);
  for (;;) {
    co_await drain();
    // Park whenever the queue is empty OR another logical poller (an
    // API-entry drain suspended inside handle()) is active: drain() then
    // returned without consuming anything, and looping on a non-empty
    // queue would spin inside this resume forever.  The active drainer
    // empties the queue; any later post notifies the waiters again.
    if (q.empty() || draining_) co_await q.waiters().wait();
  }
}

}  // namespace xt::host
