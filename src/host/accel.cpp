#include "host/accel.hpp"

#include <algorithm>
#include <cassert>

#include "host/node.hpp"
#include "net/routing.hpp"

namespace xt::host {

using ptl::WireHeader;
using ptl::WireOp;
using sim::CoTask;
using sim::Time;

AccelAgent::AccelAgent(Node& node, ptl::Pid pid, AddressSpace& as)
    : node_(node), pid_(pid), as_(as) {
  assert(node.os() == OsType::kCatamount &&
         "accelerated mode requires physically contiguous memory (§3.3)");
  ptl::Library::Config lcfg;
  lcfg.id = ptl::ProcessId{node.id(), pid};
  lib_ = std::make_unique<ptl::Library>(node.engine(), lcfg, *this, as);
  fw::Firmware::ProcessOptions opts;
  opts.accelerated = true;
  opts.matcher = this;
  fwproc_ = node.firmware().register_process(opts);
  node.firmware().bind_pid(pid, fwproc_);
  sim::spawn(pump());
}

AccelAgent::~AccelAgent() = default;

sim::Engine& AccelAgent::engine() { return node_.engine(); }
std::uint32_t AccelAgent::nid() const { return node_.id(); }
int AccelAgent::distance(std::uint32_t nid) const {
  return net::hop_count(node_.nic().network().shape(), node_.id(), nid);
}

CoTask<int> AccelAgent::call(std::function<int(ptl::Library&)> fn,
                             Time cost_hint) {
  co_await node_.cpu().run(cost_hint);
  co_await drain();  // "polling when the user-level library is entered"
  co_return fn(*lib_);
}

int AccelAgent::send(TxKind kind, std::uint32_t dst_nid,
                     const WireHeader& hdr, std::vector<ptl::IoVec> payload,
                     std::uint64_t token) {
  const fw::PendingId pd =
      node_.firmware().host_alloc_tx_pending(fwproc_);
  if (pd == fw::kNoPending) return ptl::PTL_NO_SPACE;
  tx_map_[pd] = TxRec{kind, token};
  sim::spawn(tx_post_task(pd, dst_nid, hdr, std::move(payload)));
  return ptl::PTL_OK;
}

CoTask<void> AccelAgent::tx_post_task(fw::PendingId pd,
                                      std::uint32_t dst_nid, WireHeader hdr,
                                      std::vector<ptl::IoVec> payload) {
  const ss::Config& cfg = node_.config();
  // User-level command construction — no trap, no kernel.
  co_await node_.cpu().run(cfg.host_cmd_build);
  std::uint32_t payload_len = 0;
  for (const ptl::IoVec& v : payload) payload_len += v.length;
  const bool is_inline = payload_len <= cfg.inline_payload_max;
  fw::UpperPending& up = node_.firmware().upper(fwproc_, pd);
  std::vector<std::byte> inline_bytes;
  if (is_inline && payload_len > 0) {
    inline_bytes.resize(payload_len);
    gather_read(as_, payload, 0, inline_bytes);
  }
  up.header_packet = ptl::make_header_packet(hdr, inline_bytes);

  fw::TxCommand cmd;
  cmd.pending = pd;
  cmd.dst = dst_nid;
  cmd.payload_bytes = is_inline ? 0 : payload_len;
  // Catamount buffers are physically contiguous: one DMA command per
  // scatter/gather segment.
  cmd.n_dma_cmds =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(payload.size()));
  if (cmd.payload_bytes > 0) {
    AddressSpace* as = &as_;
    auto segs =
        std::make_shared<std::vector<ptl::IoVec>>(std::move(payload));
    cmd.reader = [as, segs](std::size_t off, std::span<std::byte> out) {
      gather_read(*as, *segs, off, out);
    };
  }
  node_.firmware().post_command(fwproc_, std::move(cmd));
}

std::optional<fw::AccelMatcher::Result> AccelAgent::fw_match(
    const WireHeader& hdr, fw::PendingId pending,
    std::size_t& entries_walked) {
  entries_walked = 1;
  if (hdr.op == WireOp::kAck) {
    // The firmware writes the completion notification directly into
    // process space — no pending, no deposit.
    lib_->on_ack(hdr);
    return std::nullopt;
  }
  const ptl::Library::RxDecision d = hdr.op == WireOp::kPut
                                         ? lib_->on_put_header(hdr)
                                         : lib_->on_reply_header(hdr);
  entries_walked = std::max<std::size_t>(d.entries_walked, 1);
  if (!d.deliver) return std::nullopt;
  rx_map_[pending] = d.token;
  Result r;
  r.mlength = d.mlength;
  r.n_dma_cmds =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(d.segments.size()));
  if (d.mlength > 0) {
    AddressSpace* as = &as_;
    auto segs = std::make_shared<std::vector<ptl::IoVec>>(d.segments);
    r.deposit = [as, segs](std::span<const std::byte> bytes) {
      scatter_write(*as, *segs, bytes);
    };
  }
  return r;
}

std::optional<fw::AccelMatcher::ReplyProg> AccelAgent::fw_get(
    const WireHeader& hdr, fw::PendingId pending,
    std::size_t& entries_walked) {
  const ptl::Library::GetDecision gd = lib_->on_get_header(hdr);
  entries_walked = std::max<std::size_t>(gd.entries_walked, 1);
  if (!gd.deliver) return std::nullopt;
  rx_map_[pending] = gd.token;
  ReplyProg prog;
  prog.mlength = gd.mlength;
  prog.n_dma_cmds = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(gd.segments.size()));
  prog.reply_header = gd.reply_header;
  if (gd.mlength > 0) {
    AddressSpace* as = &as_;
    auto segs = std::make_shared<std::vector<ptl::IoVec>>(gd.segments);
    prog.reader = [as, segs](std::size_t off, std::span<std::byte> out) {
      gather_read(*as, *segs, off, out);
    };
  }
  return prog;
}

CoTask<void> AccelAgent::drain() {
  if (draining_) co_return;  // single logical poller
  draining_ = true;
  fw::FwEventQueue& q = node_.firmware().event_queue(fwproc_);
  for (;;) {
    auto ev = q.poll();
    if (!ev.has_value()) break;
    co_await handle(*ev);
  }
  draining_ = false;
}

CoTask<void> AccelAgent::handle(fw::FwEvent ev) {
  const ss::Config& cfg = node_.config();
  co_await node_.cpu().run(cfg.host_event_post);
  switch (ev.type) {
    case fw::FwEvent::Type::kTxComplete: {
      auto it = tx_map_.find(ev.pending);
      if (it != tx_map_.end()) {
        const TxRec rec = it->second;
        tx_map_.erase(it);
        if (rec.kind == TxKind::kPut) lib_->send_complete(rec.token);
        node_.firmware().host_free_tx_pending(fwproc_, ev.pending);
      }
      break;
    }
    case fw::FwEvent::Type::kRxComplete: {
      auto it = rx_map_.find(ev.pending);
      if (it != rx_map_.end()) {
        const std::uint64_t token = it->second;
        rx_map_.erase(it);
        auto ack = lib_->deposited(token);
        if (ack.has_value()) {
          // Route the ack back through the normal user-level send path;
          // the initiator's node id is in the received header, still
          // sitting in the upper pending.
          const WireHeader in = ptl::unpack_header(
              node_.firmware().upper(fwproc_, ev.pending).header_packet);
          send(TxKind::kAck, in.src_nid, *ack, {}, 0);
        }
      }
      node_.firmware().post_command(fwproc_,
                                    fw::ReleaseCommand{ev.pending});
      break;
    }
    case fw::FwEvent::Type::kRxHeader: {
      // Accelerated GET: the firmware already transmitted the reply; this
      // event retires the target-side op (GET_END).
      auto it = rx_map_.find(ev.pending);
      if (it != rx_map_.end()) {
        lib_->reply_sent(it->second);
        rx_map_.erase(it);
      }
      node_.firmware().post_command(fwproc_,
                                    fw::ReleaseCommand{ev.pending});
      break;
    }
    case fw::FwEvent::Type::kRxDropped: {
      auto it = rx_map_.find(ev.pending);
      if (it != rx_map_.end()) {
        lib_->rx_dropped(it->second);
        rx_map_.erase(it);
      }
      node_.firmware().post_command(fwproc_,
                                    fw::ReleaseCommand{ev.pending});
      break;
    }
  }
}

CoTask<void> AccelAgent::pump() {
  fw::FwEventQueue& q = node_.firmware().event_queue(fwproc_);
  for (;;) {
    co_await drain();
    if (q.empty()) co_await q.waiters().wait();
  }
}

}  // namespace xt::host
