#pragma once

// Accelerated mode (§3.3, §4.1) — the paper's in-progress second
// implementation, realized here:
//
//   * the Portals library lives in USER space; API calls never trap;
//   * commands go straight to a dedicated firmware mailbox;
//   * Portals MATCHING runs in the firmware (via the AccelMatcher seam),
//     so no interrupt is ever raised to ask the host where to put a
//     message;
//   * completion events are written directly into process space and
//     "processed by polling when the user-level Portals library is
//     entered" — modeled by draining the firmware event queue at every
//     API call plus a poll pump that represents the library being entered.
//
// Constraint from the paper: accelerated mode does not support
// non-contiguous buffers, so it is limited to Catamount processes.

#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>

#include "firmware/firmware.hpp"
#include "host/cpu.hpp"
#include "host/memory.hpp"
#include "portals/api.hpp"
#include "portals/bridge.hpp"
#include "portals/library.hpp"
#include "portals/triggered.hpp"

namespace xt::host {

class Node;

class AccelAgent final : public fw::AccelMatcher,
                         public ptl::Bridge,
                         public ptl::Nal,
                         public ptl::TriggeredOps {
 public:
  AccelAgent(Node& node, ptl::Pid pid, AddressSpace& as);
  ~AccelAgent() override;

  ptl::Library& lib() { return *lib_; }
  fw::FwProcId fwproc() const { return fwproc_; }

  // ---- ptl::Bridge (user-space: no crossing; entering the library also
  // ---- polls for firmware events).
  sim::CoTask<int> call(std::function<int(ptl::Library&)> fn,
                        sim::Time cost_hint) override;
  ptl::Library& library() override { return *lib_; }
  sim::Engine& engine() override;
  ptl::TriggeredOps* triggered() override { return this; }

  // ---- ptl::TriggeredOps (NIC SRAM counters + trigger table).
  int ct_alloc(ptl::CtHandle* out) override;
  int ct_free(ptl::CtHandle ct) override;
  int ct_get(ptl::CtHandle ct, std::uint64_t* value) override;
  int ct_set(ptl::CtHandle ct, std::uint64_t value) override;
  int ct_inc(ptl::CtHandle ct, std::uint64_t inc) override;
  sim::CoTask<int> ct_wait(ptl::CtHandle ct, std::uint64_t threshold,
                           std::uint64_t* value) override;
  int triggered_put(ptl::MdHandle md, std::uint64_t offset, std::uint32_t len,
                    ptl::ProcessId target, std::uint32_t pt_index,
                    std::uint32_t ac_index, ptl::MatchBits mbits,
                    std::uint64_t remote_offset, std::uint64_t hdr_data,
                    bool atomic, ptl::CtHandle trig_ct,
                    std::uint64_t threshold) override;
  int triggered_ct_inc(ptl::CtHandle trig_ct, std::uint64_t threshold,
                       ptl::CtHandle target_ct, std::uint64_t inc) override;
  int rearm_triggers() override;
  int reset_triggers() override;
  std::size_t triggers_armed() const override;

  // ---- ptl::Nal (user-level command posting).
  int send(TxKind kind, std::uint32_t dst_nid, const ptl::WireHeader& hdr,
           ptl::IoVecList payload, std::uint64_t token) override;
  std::uint32_t nid() const override;
  int distance(std::uint32_t nid) const override;

  // ---- fw::AccelMatcher (runs in firmware context).
  std::optional<Result> fw_match(const ptl::WireHeader& hdr,
                                 fw::PendingId pending,
                                 std::size_t& entries_walked) override;
  std::optional<ReplyProg> fw_get(const ptl::WireHeader& hdr,
                                  fw::PendingId pending,
                                  std::size_t& entries_walked) override;

 private:
  struct TxRec {
    TxKind kind = TxKind::kPut;
    std::uint64_t token = 0;
  };

  sim::CoTask<void> tx_post_task(fw::PendingId pd, std::uint32_t dst_nid,
                                 ptl::WireHeader hdr,
                                 ptl::IoVecList payload,
                                 std::uint64_t prov);
  /// Sends a Portals-level ack, parking it in deferred_acks_ when the tx
  /// pending pool is transiently exhausted (incast fan-in issues one ack
  /// per delivered put, back to back; a silently dropped ack strands the
  /// initiator forever).
  void send_ack(std::uint32_t dst_nid, const ptl::WireHeader& ack);
  /// Drains all pending firmware events (polled, interrupt-free).
  sim::CoTask<void> drain();
  sim::CoTask<void> handle(fw::FwEvent ev);
  /// Background poll pump: represents the library being entered while the
  /// application is blocked in PtlEQWait.
  sim::CoTask<void> pump();

  Node& node_;
  ptl::Pid pid_;
  AddressSpace& as_;
  std::unique_ptr<ptl::Library> lib_;
  fw::FwProcId fwproc_ = -1;

  std::unordered_map<fw::PendingId, TxRec> tx_map_;
  std::unordered_map<fw::PendingId, std::uint64_t> rx_map_;
  /// Acks awaiting a free tx pending, flushed on kTxComplete.
  std::deque<std::pair<std::uint32_t, ptl::WireHeader>> deferred_acks_;
  bool draining_ = false;
  /// Registry instruments ("accel.nN.*"): counter-wait calls and the
  /// wakeups they burn re-checking thresholds (per-round collective cost).
  telemetry::Counter* c_ct_waits_ = nullptr;
  telemetry::Counter* c_ct_wait_wakeups_ = nullptr;
};

}  // namespace xt::host
