#include "host/kernel_agent.hpp"

#include <cassert>

#include "net/routing.hpp"
#include "sim/log.hpp"
#include "sim/trace.hpp"
#include "sim/strf.hpp"
#include "telemetry/hooks.hpp"

namespace xt::host {

using ptl::WireHeader;
using ptl::WireOp;
using sim::Time;
using telemetry::Stage;
using telemetry::prov_stamp;

KernelAgent::KernelAgent(sim::Engine& eng, const ss::Config& cfg,
                         fw::Firmware& fw, Cpu& cpu, net::NodeId self,
                         const net::Shape& shape)
    : eng_(eng), cfg_(cfg), fw_(fw), cpu_(cpu), self_(self), shape_(shape) {
  fw_.set_irq([this] { on_interrupt(); });
  auto& reg = eng_.metrics();
  const std::string pre = sim::strf("agent.n%u.", self_);
  c_irq_ = &reg.counter(pre + "interrupts_serviced");
  h_events_per_irq_ = &reg.histogram(pre + "events_per_irq");
}

KernelAgent::~KernelAgent() = default;

ptl::Library& KernelAgent::add_process(ptl::Pid pid, AddressSpace& as) {
  auto rec = ProcRec{};
  rec.pid = pid;
  rec.as = &as;
  rec.nal = std::make_unique<ProcNal>(*this, pid);
  ptl::Library::Config lcfg;
  lcfg.id = ptl::ProcessId{self_, pid};
  rec.lib = std::make_unique<ptl::Library>(eng_, lcfg, *rec.nal, as);
  procs_.push_back(std::move(rec));
  return *procs_.back().lib;
}

ptl::Library* KernelAgent::lib_for(ptl::Pid pid) {
  for (auto& p : procs_) {
    if (p.pid == pid) return p.lib.get();
  }
  return nullptr;
}

AddressSpace* KernelAgent::as_for(ptl::Pid pid) {
  for (auto& p : procs_) {
    if (p.pid == pid) return p.as;
  }
  return nullptr;
}

int KernelAgent::ProcNal::send(TxKind kind, std::uint32_t dst_nid,
                               const ptl::WireHeader& hdr,
                               ptl::IoVecList payload,
                               std::uint64_t token) {
  return agent_.send_message(pid_, kind, dst_nid, hdr, std::move(payload),
                             token);
}

int KernelAgent::ProcNal::distance(std::uint32_t nid) const {
  return net::hop_count(agent_.shape_, agent_.self_, nid);
}

int KernelAgent::send_message(ptl::Pid src_pid, ptl::Nal::TxKind kind,
                              std::uint32_t dst_nid, ptl::WireHeader hdr,
                              ptl::IoVecList payload,
                              std::uint64_t token) {
  // Allocate from the host-managed TX pending pool (§4.2/§4.3).
  const fw::PendingId pd = fw_.host_alloc_tx_pending(fw::kGenericProc);
  if (pd == fw::kNoPending) return ptl::PTL_NO_SPACE;
  tx_map_[pd] = TxRec{kind, token, src_pid};
  // Open a provenance record at post time for the message kinds that can be
  // observed end to end (puts and get replies reach a remote delivery; acks
  // and get requests complete as part of another record's path).
  std::uint64_t prov = 0;
  if (eng_.provenance_enabled() && (kind == ptl::Nal::TxKind::kPut ||
                                    kind == ptl::Nal::TxKind::kReply)) {
    std::uint32_t len = 0;
    for (const ptl::IoVec& v : payload) len += v.length;
    prov = telemetry::prov_begin(eng_, self_, dst_nid, len);
  }
  sim::spawn(
      tx_post_task(pd, src_pid, dst_nid, hdr, std::move(payload), prov));
  return ptl::PTL_OK;
}

sim::CoTask<void> KernelAgent::tx_post_task(fw::PendingId pd,
                                            ptl::Pid src_pid,
                                            std::uint32_t dst_nid,
                                            ptl::WireHeader hdr,
                                            ptl::IoVecList payload,
                                            std::uint64_t prov) {
  eng_.tag_category(telemetry::Cat::kAgent, static_cast<int>(self_));
  AddressSpace* as = as_for(src_pid);
  assert(as != nullptr);
  std::uint32_t payload_len = 0;
  for (const ptl::IoVec& v : payload) payload_len += v.length;

  // The <= 12-byte optimization: small payloads ride in the header packet
  // and the firmware never runs a payload DMA for them (§6).
  const bool is_inline = payload_len <= cfg_.inline_payload_max;
  const std::uint32_t wire_payload = is_inline ? 0 : payload_len;
  const std::uint32_t segs = is_inline ? 1 : dma_segments_of(*as, payload);

  // Host-side command construction; on Linux, add per-page pinning and
  // translation before the DMA program can be pushed down (§3.3).
  Time cost = cfg_.host_cmd_build;
  if (as->os() == OsType::kLinux && segs > 1) {
    cost += cfg_.linux_per_page * static_cast<std::int64_t>(segs);
  }
  co_await cpu_.run_kernel(cost);

  // Write the header (and any inline payload) into the upper pending.
  fw::UpperPending& up = fw_.upper(fw::kGenericProc, pd);
  std::vector<std::byte> inline_bytes;
  if (is_inline && payload_len > 0) {
    inline_bytes.resize(payload_len);
    gather_read(*as, payload, 0, inline_bytes);
  }
  up.header_packet = ptl::make_header_packet(hdr, inline_bytes);

  fw::TxCommand cmd;
  cmd.pending = pd;
  cmd.dst = dst_nid;
  cmd.payload_bytes = wire_payload;
  cmd.n_dma_cmds = segs;
  cmd.prov = prov;
  if (wire_payload > 0) {
    auto segs_ptr =
        std::make_shared<ptl::IoVecList>(std::move(payload));
    cmd.reader = [as, segs_ptr](std::size_t off, std::span<std::byte> out) {
      gather_read(*as, *segs_ptr, off, out);
    };
  }
  fw_.post_command(fw::kGenericProc, std::move(cmd));
}

void KernelAgent::on_interrupt() {
  if (irq_active_) return;  // the running handler will drain this event too
  irq_active_ = true;
  sim::spawn(irq_task());
}

sim::CoTask<void> KernelAgent::irq_task() {
  eng_.tag_category(telemetry::Cat::kAgent, static_cast<int>(self_));
  c_irq_->add();
  if (eng_.trace_enabled()) {
    sim::trace_begin(eng_, sim::strf("n%u.cpu", self_), "interrupt");
  }
  // Interrupt entry/exit overhead (§3.3: "at least 2 us each").
  co_await cpu_.run_interrupt(cfg_.interrupt);
  std::uint64_t drained = 0;
  for (;;) {
    auto ev = fw_.event_queue(fw::kGenericProc).poll();
    if (!ev.has_value()) break;
    ++drained;
    co_await handle_event(*ev);
  }
  if (eng_.metrics().sampling()) h_events_per_irq_->record(drained);
  irq_active_ = false;
  if (eng_.trace_enabled()) {
    sim::trace_end(eng_, sim::strf("n%u.cpu", self_), "interrupt");
  }
}

sim::CoTask<void> KernelAgent::handle_event(fw::FwEvent ev) {
  switch (ev.type) {
    case fw::FwEvent::Type::kRxHeader:
      co_await handle_rx_header(ev.pending);
      break;

    case fw::FwEvent::Type::kRxComplete: {
      co_await cpu_.run_interrupt(cfg_.host_event_post);
      auto it = rx_map_.find(ev.pending);
      if (it != rx_map_.end()) {
        const RxRec rec = it->second;
        rx_map_.erase(it);
        if (ptl::Library* lib = lib_for(rec.pid); lib && rec.token != 0) {
          const fw::UpperPending& up = fw_.upper(fw::kGenericProc, ev.pending);
          const WireHeader hdr = ptl::unpack_header(up.header_packet);
          auto ack = lib->deposited(rec.token);
          if (up.msg) prov_stamp(eng_, up.msg->prov_id, Stage::kHostDeliver);
          send_ack_if_any(rec.pid, hdr.src_nid, ack);
        }
      }
      release(ev.pending);
      break;
    }

    case fw::FwEvent::Type::kRxDropped: {
      co_await cpu_.run_interrupt(cfg_.host_event_post);
      auto it = rx_map_.find(ev.pending);
      if (it != rx_map_.end()) {
        const RxRec rec = it->second;
        rx_map_.erase(it);
        if (ptl::Library* lib = lib_for(rec.pid); lib && rec.token != 0) {
          lib->rx_dropped(rec.token);
        }
      }
      release(ev.pending);
      break;
    }

    case fw::FwEvent::Type::kTxComplete: {
      co_await cpu_.run_interrupt(cfg_.host_event_post);
      auto it = tx_map_.find(ev.pending);
      if (it != tx_map_.end()) {
        const TxRec rec = it->second;
        tx_map_.erase(it);
        if (ptl::Library* lib = lib_for(rec.pid)) {
          switch (rec.kind) {
            case ptl::Nal::TxKind::kPut:
              lib->send_complete(rec.token);
              break;
            case ptl::Nal::TxKind::kReply:
              lib->reply_sent(rec.token);
              break;
            case ptl::Nal::TxKind::kGetRequest:
            case ptl::Nal::TxKind::kAck:
              break;  // no Portals event for these transmits
          }
        }
        // TX pendings are host-managed: return to our free list directly.
        fw_.host_free_tx_pending(fw::kGenericProc, ev.pending);
      }
      break;
    }
  }
}

sim::CoTask<void> KernelAgent::handle_rx_header(fw::PendingId pending) {
  const fw::UpperPending& up = fw_.upper(fw::kGenericProc, pending);
  const WireHeader hdr = ptl::unpack_header(up.header_packet);
  ptl::Library* lib = lib_for(hdr.dst_pid);
  AddressSpace* as = as_for(hdr.dst_pid);
  const bool has_body = up.msg != nullptr && !up.msg->payload.empty();
  if (eng_.log_enabled(sim::LogLevel::kDebug)) {
    sim::log_msg(eng_, sim::LogLevel::kDebug,
                 sim::strf("agent.n%u", self_),
                 sim::strf("rx header pending=%u op=%u len=%u body=%d",
                           pending, static_cast<unsigned>(hdr.op),
                           hdr.length, static_cast<int>(has_body)));
  }

  if (lib == nullptr) {
    // No such process: consume the body (if any) and reclaim.
    if (has_body) {
      fw::RxCommand cmd;
      cmd.pending = pending;
      cmd.deliver_bytes = 0;
      rx_map_[pending] = RxRec{0, 0};
      fw_.post_command(fw::kGenericProc, std::move(cmd));
    } else {
      release(pending);
    }
    co_return;
  }

  switch (hdr.op) {
    case WireOp::kPut:
    case WireOp::kAtomicSum:
    case WireOp::kReply: {
      // Atomic sums match and complete exactly like puts; only the deposit
      // differs (accumulate instead of overwrite).
      const bool is_put = hdr.op != WireOp::kReply;
      const bool atomic = hdr.op == WireOp::kAtomicSum;
      const ptl::Library::RxDecision d =
          is_put ? lib->on_put_header(hdr) : lib->on_reply_header(hdr);
      // Host-side Portals matching cost; replies skip the match walk
      // entirely (the header's token routes them straight to their MD).
      Time cost = is_put ? cfg_.host_match_base +
                               cfg_.host_match_per_me *
                                   static_cast<std::int64_t>(d.entries_walked)
                         : cfg_.host_event_post;
      if (!has_body) {
        // Inline / zero-length: deliver and complete in this interrupt —
        // the §6 small-message optimization (one interrupt total).
        cost += cfg_.host_event_post;
        co_await cpu_.run_interrupt(cost);
        // Match and delivery run in one CPU charge here, so the host_match
        // interval carries the combined cost and host_deliver is the
        // delivery instant (zero-width).
        if (up.msg) prov_stamp(eng_, up.msg->prov_id, Stage::kHostMatch);
        finish_inline(*lib, *as, d, up, atomic);
        if (up.msg) prov_stamp(eng_, up.msg->prov_id, Stage::kHostDeliver);
        release(pending);
      } else {
        std::uint32_t segs = 1;
        if (d.deliver && d.mlength > 0) {
          segs = dma_segments_of(*as, d.segments);
          if (as->os() == OsType::kLinux && segs > 1) {
            cost += cfg_.linux_per_page * static_cast<std::int64_t>(segs);
          }
        }
        co_await cpu_.run_interrupt(cost + cfg_.host_cmd_build);
        if (up.msg) prov_stamp(eng_, up.msg->prov_id, Stage::kHostMatch);
        fw::RxCommand cmd;
        cmd.pending = pending;
        cmd.deliver_bytes = d.deliver ? d.mlength : 0;
        cmd.n_dma_cmds = segs;
        if (d.deliver && d.mlength > 0) {
          AddressSpace* tas = as;
          auto segs_ptr =
              std::make_shared<ptl::IoVecList>(d.segments);
          if (atomic) {
            cmd.deposit = [tas, segs_ptr](std::span<const std::byte> bytes) {
              scatter_accumulate_f64(*tas, *segs_ptr, bytes);
            };
          } else {
            cmd.deposit = [tas, segs_ptr](std::span<const std::byte> bytes) {
              scatter_write(*tas, *segs_ptr, bytes);
            };
          }
        }
        rx_map_[pending] = RxRec{d.token, hdr.dst_pid};
        fw_.post_command(fw::kGenericProc, std::move(cmd));
      }
      break;
    }

    case WireOp::kGet: {
      const ptl::Library::GetDecision gd = lib->on_get_header(hdr);
      const Time cost = cfg_.host_match_base +
                        cfg_.host_match_per_me *
                            static_cast<std::int64_t>(gd.entries_walked) +
                        cfg_.host_cmd_build;
      co_await cpu_.run_interrupt(cost);
      if (gd.deliver) {
        // Queue the reply transmit; GET_END fires at its TxComplete.
        send_message(hdr.dst_pid, ptl::Nal::TxKind::kReply, hdr.src_nid,
                     gd.reply_header, gd.segments, gd.token);
      }
      release(pending);
      break;
    }

    case WireOp::kAck: {
      co_await cpu_.run_interrupt(cfg_.host_event_post);
      lib->on_ack(hdr);
      release(pending);
      break;
    }

    case WireOp::kFwAck:
    case WireOp::kFwNack:
      // Firmware-internal; never forwarded to the host.
      release(pending);
      break;
  }
}

void KernelAgent::finish_inline(ptl::Library& lib, AddressSpace& as,
                                const ptl::Library::RxDecision& d,
                                const fw::UpperPending& up, bool atomic) {
  if (d.token == 0) return;  // dropped by matching; nothing to finish
  if (d.deliver && d.mlength > 0) {
    const auto inl = ptl::inline_payload_of(
        std::span<const std::byte>(up.header_packet));
    const auto bytes =
        inl.first(std::min<std::size_t>(d.mlength, inl.size()));
    if (atomic) {
      scatter_accumulate_f64(as, d.segments, bytes);
    } else {
      scatter_write(as, d.segments, bytes);
    }
  }
  const WireHeader hdr = ptl::unpack_header(up.header_packet);
  auto ack = lib.deposited(d.token);
  send_ack_if_any(hdr.dst_pid, hdr.src_nid, ack);
}

void KernelAgent::send_ack_if_any(ptl::Pid pid, std::uint32_t dst_nid,
                                  const std::optional<ptl::WireHeader>& ack) {
  if (!ack.has_value()) return;
  send_message(pid, ptl::Nal::TxKind::kAck, dst_nid, *ack, {}, 0);
}

void KernelAgent::release(fw::PendingId pending) {
  fw_.post_command(fw::kGenericProc, fw::ReleaseCommand{pending});
}

}  // namespace xt::host
