#pragma once

// NIC-offloaded collective engine.
//
// The paper's accelerated mode (§3.3) exists to take the host out of the
// data path: matching moves into the SeaStar firmware and interrupts
// disappear.  This subsystem takes the next step the Portals community
// took after the XT3 — Portals-4-style counting events and triggered
// operations (portals/triggered.hpp) — and builds collectives that run
// *entirely on the NIC* between a start and a completion touch:
//
//   * the host arms a schedule once: match entries whose deposits bump
//     firmware counters, plus triggered puts/atomic-sums that launch when
//     a counter reaches its threshold;
//   * one PtlCTInc starts the collective; every subsequent hop is a
//     firmware counter reaching threshold and firing the next message,
//     with zero host interrupts and zero host cycles;
//   * the host learns of completion by PtlCTWait on the final counter
//     (a user-space poll/suspend, not an interrupt).
//
// Each collective comes in two algorithms and two modes:
//
//   barrier    — dissemination (one counter, cumulative thresholds: the
//                round-k send fires at ct >= k+1 = own arrival + k
//                receives) and k-ary tree (fan-in counter at the parent,
//                fan-out trigger on the way down);
//   allreduce  — recursive doubling (per-round accumulation buffers with
//                threshold-2 counters fed by the partner's and the rank's
//                own triggered atomic-sum puts — the self-put rides the
//                network loopback path) and k-ary tree (atomic fan-in to
//                the root's buffer, plain-put fan-out);
//   bcast      — k-ary tree forwarding (arrival bumps the counter that
//                triggers the sends to the children).
//
// Mode::kHost runs the same algorithms over the src/mpi point-to-point
// layer on generic-mode processes (the paper's measured configuration);
// Mode::kOffload requires accelerated-mode processes (spawn_accel_process)
// and arms the firmware schedule described above.  bench/coll_scaling.cpp
// sweeps both to locate the host-vs-offload crossover.
//
// Iteration protocol (bench/tests): arm with prepare_*(), run the
// collective on every rank, then rearm_iteration() on every rank — and
// only start the next iteration once every rank has rearmed.  The two
// global quiescence points matter: a rank that rearms while a peer is
// still mid-iteration would zero away counter bumps belonging to the
// next iteration (messages from fast ranks that already started it),
// losing them and deadlocking the schedule.  An offload operation on a
// consumed schedule returns PTL_FAIL rather than rearming behind the
// caller's back.

#include <cstdint>
#include <memory>
#include <vector>

#include "host/node.hpp"
#include "mpi/mpi.hpp"
#include "portals/api.hpp"
#include "sim/task.hpp"

namespace xt::coll {

enum class Mode : std::uint8_t {
  kHost,     // algorithms over src/mpi point-to-point (host CPU drives hops)
  kOffload,  // firmware counters + triggered ops (NIC drives hops)
};

enum class BarrierAlgo : std::uint8_t { kDissemination, kTree };
enum class AllreduceAlgo : std::uint8_t { kRecursiveDoubling, kTree };

const char* mode_str(Mode m);
const char* barrier_algo_str(BarrierAlgo a);
const char* allreduce_algo_str(AllreduceAlgo a);

struct Config {
  Mode mode = Mode::kHost;
  /// Fan-out of the k-ary tree algorithms.
  int tree_arity = 4;
  /// Host-mode point-to-point protocol constants.
  mpi::Flavor flavor = mpi::Flavor::mpich1();
};

/// One rank's view of a communicator: `ranks[i]` is the Portals id of rank
/// i, and `proc` must be the process behind `ranks[rank]`.
class Coll {
 public:
  Coll(host::Process& proc, std::vector<ptl::ProcessId> ranks, int rank,
       Config cfg = {});
  ~Coll();

  /// Host mode: brings up the MPI layer (must complete on every rank
  /// before traffic flows).  Offload mode: nothing to do yet.
  sim::CoTask<int> init();

  // Arms the offload schedule (counters, match entries, triggered ops) for
  // one collective shape.  Must complete on EVERY rank before any rank
  // starts the operation — a triggered message arriving at a rank that has
  // not posted its match entries yet would be dropped.  No-ops in host
  // mode and when the wanted schedule is already armed; switching shapes
  // tears the old schedule down (the firmware trigger table is a scarce
  // SRAM resource).
  sim::CoTask<int> prepare_barrier(BarrierAlgo algo);
  sim::CoTask<int> prepare_allreduce(AllreduceAlgo algo, std::uint32_t count);
  sim::CoTask<int> prepare_bcast(std::uint32_t len, int root);

  /// Re-arms a consumed offload schedule for another iteration: counters
  /// to zero, accumulation buffers cleared, trigger fired-flags reset.
  /// Must run on every rank after ALL ranks completed the previous
  /// iteration and before ANY rank starts the next (see the iteration
  /// protocol above).  No-op in host mode or when the schedule is fresh.
  sim::CoTask<int> rearm_iteration();

  /// Collective operations.  `buf` is a virtual address in the owning
  /// process; allreduce sums `count` doubles in place; bcast moves `len`
  /// bytes from `root`'s buf into everyone else's.  Recursive doubling
  /// requires a power-of-two communicator and falls back to the tree
  /// algorithm otherwise.
  sim::CoTask<int> barrier(BarrierAlgo algo);
  sim::CoTask<int> allreduce(AllreduceAlgo algo, std::uint64_t buf,
                             std::uint32_t count);
  sim::CoTask<int> bcast(std::uint64_t buf, std::uint32_t len, int root);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(ranks_.size()); }
  Mode mode() const { return cfg_.mode; }
  host::Process& process() { return proc_; }
  /// Host-mode point-to-point layer (nullptr in offload mode).
  mpi::Comm* comm() { return comm_.get(); }

  /// NIC SRAM the offload machinery occupies for this process (the
  /// firmware's counter + trigger tables, reserved at boot); 0 in host
  /// mode.  Compare against ss::Config::sram_bytes (384 KB).
  std::size_t sram_footprint() const;
  /// Armed triggered operations (offload; firmware table occupancy).
  std::size_t triggers_armed() const;

 private:
  enum class OpKind : std::uint8_t {
    kNone,
    kBarDissem,
    kBarTree,
    kArRecDbl,
    kArTree,
    kBcast,
  };

  /// The armed offload schedule: every firmware/Portals resource it holds
  /// plus the start/completion protocol run_armed() drives.
  struct Sched {
    OpKind kind = OpKind::kNone;
    std::uint32_t io_bytes = 0;  // payload bytes moved per operation
    int root = 0;                // bcast root the schedule was built for
    std::vector<ptl::CtHandle> cts;
    std::vector<ptl::MeHandle> mes;
    std::vector<ptl::MdHandle> mds;
    ptl::CtHandle start_ct{};  // invalid: this rank only reacts
    ptl::CtHandle done_ct{};
    std::uint64_t done_thr = 0;
    std::uint64_t in_addr = 0;   // run() stages input here (0: none)
    std::uint64_t out_addr = 0;  // result read back from here (0: none)
    bool accumulate_in = false;  // input is summed into in_addr (f64)
    std::vector<std::uint64_t> zero_addrs;  // zeroed on (re)arm
    bool fresh = false;  // armed/rearmed and not consumed by a run yet
  };

  // k-ary tree helpers (virtual ranks; root is vrank 0).
  int tree_parent(int v) const { return (v - 1) / cfg_.tree_arity; }
  std::vector<int> tree_children(int v) const;

  /// Grow-only cached process-memory buffers (the simulated address space
  /// never frees, so per-arm allocations would leak address space).
  std::uint64_t buf_slot(std::size_t slot, std::size_t bytes);
  void zero_buf(std::uint64_t addr, std::uint32_t len);

  sim::CoTask<int> attach_ct_me(ptl::MatchBits bits, std::uint64_t buf,
                                std::uint32_t len, ptl::CtHandle ct);
  sim::CoTask<int> teardown();
  sim::CoTask<int> rearm();
  sim::CoTask<int> run_armed(std::uint64_t buf);

  sim::CoTask<int> arm_bar_dissem();
  sim::CoTask<int> arm_bar_tree();
  sim::CoTask<int> arm_ar_recdbl(std::uint32_t count);
  sim::CoTask<int> arm_ar_tree(std::uint32_t count);
  sim::CoTask<int> arm_bcast(std::uint32_t len, int root);

  sim::CoTask<int> host_barrier_dissem();
  sim::CoTask<int> host_barrier_tree();
  sim::CoTask<int> host_allreduce_tree(std::uint64_t buf,
                                       std::uint32_t count);
  sim::CoTask<int> host_bcast_tree(std::uint64_t buf, std::uint32_t len,
                                   int root);

  host::Process& proc_;
  std::vector<ptl::ProcessId> ranks_;
  int rank_;
  Config cfg_;

  std::unique_ptr<mpi::Comm> comm_;  // host mode only
  Sched sched_;

  struct BufSlot {
    std::uint64_t addr = 0;
    std::size_t cap = 0;
  };
  std::vector<BufSlot> bufs_;
};

}  // namespace xt::coll
