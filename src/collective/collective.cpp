#include "collective/collective.hpp"

#include <cassert>
#include <cstddef>
#include <cstring>

#include "portals/triggered.hpp"

namespace xt::coll {

using sim::CoTask;

namespace {

/// Portal table index the collective match entries live on.
constexpr std::uint32_t kPt = 0;

// Match bits for the offload landing pads.  High nibble pattern keeps them
// out of the way of application traffic on the same portal index.
constexpr ptl::MatchBits kBarBase = 0xC0110000'00000010ull;  // + round
constexpr ptl::MatchBits kUpBits = 0xC0110000'00000002ull;
constexpr ptl::MatchBits kDownBits = 0xC0110000'00000003ull;
constexpr ptl::MatchBits kBcastBits = 0xC0110000'00000004ull;
constexpr ptl::MatchBits kRoundBase = 0xC0110000'00000100ull;  // + round

// Host-mode tags: user range, clear of the mpi-internal 0xFFxx00 block.
constexpr int kTagBar = 0x710000;  // + round
constexpr int kTagUp = 0x720000;
constexpr int kTagDown = 0x730000;
constexpr int kTagArU = 0x740000;
constexpr int kTagArD = 0x750000;
constexpr int kTagBc = 0x760000;

int ceil_log2(int n) {
  int r = 0;
  while ((1 << r) < n) ++r;
  return r;
}

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

/// Host-CPU cost of summing `count` doubles (matches src/mpi/coll.cpp).
sim::Time sum_cost(std::uint32_t count) {
  return sim::Time::ns(2) * static_cast<std::int64_t>(count);
}

}  // namespace

const char* mode_str(Mode m) {
  return m == Mode::kHost ? "host" : "offload";
}

const char* barrier_algo_str(BarrierAlgo a) {
  return a == BarrierAlgo::kDissemination ? "dissemination" : "tree";
}

const char* allreduce_algo_str(AllreduceAlgo a) {
  return a == AllreduceAlgo::kRecursiveDoubling ? "recdbl" : "tree";
}

Coll::Coll(host::Process& proc, std::vector<ptl::ProcessId> ranks, int rank,
           Config cfg)
    : proc_(proc), ranks_(std::move(ranks)), rank_(rank), cfg_(cfg) {
  assert(rank_ >= 0 && rank_ < size());
  assert(cfg_.tree_arity >= 1);
}

Coll::~Coll() = default;

CoTask<int> Coll::init() {
  if (cfg_.mode == Mode::kHost) {
    comm_ = std::make_unique<mpi::Comm>(proc_, ranks_, rank_, cfg_.flavor);
    co_return co_await comm_->init();
  }
  co_return ptl::PTL_OK;
}

std::vector<int> Coll::tree_children(int v) const {
  std::vector<int> out;
  const int n = size();
  for (int i = 0; i < cfg_.tree_arity; ++i) {
    const int c = v * cfg_.tree_arity + 1 + i;
    if (c < n) out.push_back(c);
  }
  return out;
}

std::uint64_t Coll::buf_slot(std::size_t slot, std::size_t bytes) {
  if (slot >= bufs_.size()) bufs_.resize(slot + 1);
  BufSlot& s = bufs_[slot];
  if (bytes > s.cap) {
    s.addr = proc_.alloc(bytes);
    s.cap = bytes;
  }
  return s.addr;
}

void Coll::zero_buf(std::uint64_t addr, std::uint32_t len) {
  const std::vector<std::byte> z(len);
  proc_.write_bytes(addr, z);
}

std::size_t Coll::sram_footprint() const {
  if (cfg_.mode == Mode::kHost) return 0;
  const ss::Config& c = proc_.node().config();
  return c.n_accel_counters * c.counter_bytes +
         c.n_accel_triggers * c.trigger_bytes;
}

std::size_t Coll::triggers_armed() const {
  if (cfg_.mode == Mode::kHost) return 0;
  ptl::TriggeredOps* t = proc_.api().bridge().triggered();
  return t == nullptr ? 0 : t->triggers_armed();
}

// ------------------------------------------------------ offload plumbing ----

CoTask<int> Coll::attach_ct_me(ptl::MatchBits bits, std::uint64_t buf,
                               std::uint32_t len, ptl::CtHandle ct) {
  ptl::Api& api = proc_.api();
  auto me = co_await api.PtlMEAttach(
      kPt, ptl::ProcessId{ptl::kNidAny, ptl::kPidAny}, bits, /*ibits=*/0,
      ptl::Unlink::kRetain, ptl::InsPos::kAfter);
  if (me.rc != ptl::PTL_OK) co_return me.rc;
  sched_.mes.push_back(me.value);
  ptl::MdDesc md;
  md.start = buf;
  md.length = len;
  // MANAGE_REMOTE pins every deposit at the initiator's remote offset
  // (always 0 here) instead of a locally-advancing offset, so repeated
  // atomic-sums accumulate in place.  No EQ: deposits complete entirely in
  // the firmware (fw_complete) and only the counter records them.
  md.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
               ptl::PTL_MD_EVENT_CT_PUT;
  md.ct = ct;
  auto h = co_await api.PtlMDAttach(me.value, md, ptl::Unlink::kRetain);
  if (h.rc != ptl::PTL_OK) co_return h.rc;
  sched_.mds.push_back(h.value);
  co_return ptl::PTL_OK;
}

CoTask<int> Coll::teardown() {
  if (sched_.kind == OpKind::kNone) co_return ptl::PTL_OK;
  ptl::Api& api = proc_.api();
  // Best-effort: drop triggers first (they reference the MDs/counters),
  // then the Portals objects, then the counters.
  (void)co_await api.PtlCTResetTriggers();
  for (const ptl::MdHandle md : sched_.mds) (void)co_await api.PtlMDUnlink(md);
  for (const ptl::MeHandle me : sched_.mes) (void)co_await api.PtlMEUnlink(me);
  for (const ptl::CtHandle ct : sched_.cts) (void)co_await api.PtlCTFree(ct);
  sched_ = Sched{};
  co_return ptl::PTL_OK;
}

CoTask<int> Coll::rearm() {
  ptl::Api& api = proc_.api();
  // Counters to zero BEFORE clearing fired flags: a trigger scan still in
  // flight must not see old counter values against re-armed triggers.
  for (const ptl::CtHandle ct : sched_.cts) {
    const int rc = co_await api.PtlCTSet(ct, 0);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  for (const std::uint64_t addr : sched_.zero_addrs) {
    zero_buf(addr, sched_.io_bytes);
  }
  const int rc = co_await api.PtlCTRearm();
  if (rc != ptl::PTL_OK) co_return rc;
  sched_.fresh = true;
  co_return ptl::PTL_OK;
}

CoTask<int> Coll::rearm_iteration() {
  if (cfg_.mode == Mode::kHost || size() == 1 ||
      sched_.kind == OpKind::kNone || sched_.fresh) {
    co_return ptl::PTL_OK;
  }
  co_return co_await rearm();
}

CoTask<int> Coll::run_armed(std::uint64_t buf) {
  Sched& s = sched_;
  ptl::Api& api = proc_.api();
  // A consumed schedule is an iteration-protocol violation, not something
  // to paper over: rearming here could zero away a peer's early
  // next-iteration bumps (see the header).
  if (!s.fresh) co_return ptl::PTL_FAIL;
  s.fresh = false;

  // Stage this rank's contribution.  The read-modify-write for the
  // accumulating case is suspension-free, so it cannot interleave with a
  // firmware deposit into the same buffer.
  if (s.in_addr != 0 && buf != 0 && s.io_bytes != 0) {
    const std::size_t count = s.io_bytes / 8;
    std::vector<double> mine(count);
    proc_.read_bytes(buf, std::as_writable_bytes(std::span(mine)));
    if (s.accumulate_in) {
      std::vector<double> acc(count);
      proc_.read_bytes(s.in_addr, std::as_writable_bytes(std::span(acc)));
      for (std::size_t i = 0; i < count; ++i) acc[i] += mine[i];
      proc_.write_bytes(s.in_addr, std::as_bytes(std::span(acc)));
    } else {
      proc_.write_bytes(s.in_addr, std::as_bytes(std::span(mine)));
    }
  }

  // Start: the single host touch.  Everything between here and the
  // completion wait happens on NICs.
  if (s.start_ct.valid()) {
    const int rc = co_await api.PtlCTInc(s.start_ct, 1);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  auto w = co_await api.PtlCTWait(s.done_ct, s.done_thr);
  if (w.rc != ptl::PTL_OK) co_return w.rc;

  if (s.out_addr != 0 && buf != 0 && s.io_bytes != 0) {
    std::vector<std::byte> res(s.io_bytes);
    proc_.read_bytes(s.out_addr, res);
    proc_.write_bytes(buf, res);
  }
  co_return ptl::PTL_OK;
}

// ------------------------------------------------------- offload arming ----

// Dissemination barrier on one cumulative counter.  ct counts the rank's
// own arrival (the start inc) plus every received round message, so the
// round-k send to rank+2^k is due at ct >= k+1 and completion at
// ct >= rounds+1.  A send therefore certifies "arrived and heard k rounds"
// — the transitive closure that makes dissemination a barrier.
CoTask<int> Coll::arm_bar_dissem() {
  int rc = co_await teardown();
  if (rc != ptl::PTL_OK) co_return rc;
  ptl::Api& api = proc_.api();
  const int n = size();
  const int rounds = ceil_log2(n);

  // One counter per round plus a start counter, chained by a progress
  // token.  A single cumulative counter is NOT sound here: inbound
  // receives alone could reach a send's threshold, launching this rank's
  // round-k message before the rank itself arrived at the barrier.  With
  // the chain, the round-k send fires only once the rank has started AND
  // received the round-0..k-1 messages:
  //
  //   S >= 1        -> put round 0;  C_0 += 1   (token: round 0 sent)
  //   C_{k-1} >= 2  -> put round k;  C_k += 1   (receive + token)
  //   done:  C_{R-1} >= 2
  //
  // Each round's message carries its own match bits so its receive bumps
  // only that round's counter.
  auto start = co_await api.PtlCTAlloc();
  if (start.rc != ptl::PTL_OK) co_return start.rc;
  sched_.kind = OpKind::kBarDissem;
  sched_.cts.push_back(start.value);
  std::vector<ptl::CtHandle> round_ct;
  for (int k = 0; k < rounds; ++k) {
    auto c = co_await api.PtlCTAlloc();
    if (c.rc != ptl::PTL_OK) co_return c.rc;
    sched_.cts.push_back(c.value);
    round_ct.push_back(c.value);
  }
  for (const ptl::CtHandle c : sched_.cts) {
    rc = co_await api.PtlCTSet(c, 0);
    if (rc != ptl::PTL_OK) co_return rc;
  }

  const std::uint64_t pad = buf_slot(0, 8);
  for (int k = 0; k < rounds; ++k) {
    rc = co_await attach_ct_me(kBarBase + static_cast<std::uint64_t>(k), pad,
                               8, round_ct[static_cast<std::size_t>(k)]);
    if (rc != ptl::PTL_OK) co_return rc;
  }

  ptl::MdDesc src;
  src.start = pad;
  src.length = 8;
  auto smd = co_await api.PtlMDBind(src, ptl::Unlink::kRetain);
  if (smd.rc != ptl::PTL_OK) co_return smd.rc;
  sched_.mds.push_back(smd.value);

  for (int k = 0; k < rounds; ++k) {
    const int peer = (rank_ + (1 << k)) % n;
    const ptl::CtHandle trig =
        k == 0 ? start.value : round_ct[static_cast<std::size_t>(k) - 1];
    const std::uint64_t thr = k == 0 ? 1 : 2;
    rc = co_await api.PtlTriggeredPut(
        smd.value, 0, /*len=*/0, ranks_[static_cast<std::size_t>(peer)], kPt,
        0, kBarBase + static_cast<std::uint64_t>(k), 0, 0, trig, thr);
    if (rc != ptl::PTL_OK) co_return rc;
    rc = co_await api.PtlTriggeredCTInc(
        trig, thr, round_ct[static_cast<std::size_t>(k)], 1);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  sched_.start_ct = start.value;
  sched_.done_ct = round_ct.back();
  sched_.done_thr = 2;
  sched_.fresh = true;
  co_return ptl::PTL_OK;
}

// k-ary tree barrier: arrivals fan in on ct_up (children's puts + the
// rank's own start inc), the root's full ct_up releases the fan-out, and
// ct_down forwards it.
CoTask<int> Coll::arm_bar_tree() {
  int rc = co_await teardown();
  if (rc != ptl::PTL_OK) co_return rc;
  ptl::Api& api = proc_.api();
  const std::vector<int> kids = tree_children(rank_);
  const std::uint64_t arrivals = kids.size() + 1;  // children + own start

  auto up = co_await api.PtlCTAlloc();
  if (up.rc != ptl::PTL_OK) co_return up.rc;
  sched_.kind = OpKind::kBarTree;
  sched_.cts.push_back(up.value);
  auto dn = co_await api.PtlCTAlloc();
  if (dn.rc != ptl::PTL_OK) co_return dn.rc;
  sched_.cts.push_back(dn.value);
  for (const ptl::CtHandle c : sched_.cts) {
    rc = co_await api.PtlCTSet(c, 0);
    if (rc != ptl::PTL_OK) co_return rc;
  }

  const std::uint64_t pad = buf_slot(0, 8);
  rc = co_await attach_ct_me(kUpBits, pad, 8, up.value);
  if (rc != ptl::PTL_OK) co_return rc;
  rc = co_await attach_ct_me(kDownBits, pad, 8, dn.value);
  if (rc != ptl::PTL_OK) co_return rc;

  ptl::MdDesc src;
  src.start = pad;
  src.length = 8;
  auto smd = co_await api.PtlMDBind(src, ptl::Unlink::kRetain);
  if (smd.rc != ptl::PTL_OK) co_return smd.rc;
  sched_.mds.push_back(smd.value);

  if (rank_ == 0) {
    for (const int c : kids) {
      rc = co_await api.PtlTriggeredPut(
          smd.value, 0, 0, ranks_[static_cast<std::size_t>(c)], kPt, 0,
          kDownBits, 0, 0, up.value, arrivals);
      if (rc != ptl::PTL_OK) co_return rc;
    }
    sched_.done_ct = up.value;
    sched_.done_thr = arrivals;
  } else {
    const int parent = tree_parent(rank_);
    rc = co_await api.PtlTriggeredPut(
        smd.value, 0, 0, ranks_[static_cast<std::size_t>(parent)], kPt, 0,
        kUpBits, 0, 0, up.value, arrivals);
    if (rc != ptl::PTL_OK) co_return rc;
    for (const int c : kids) {
      rc = co_await api.PtlTriggeredPut(
          smd.value, 0, 0, ranks_[static_cast<std::size_t>(c)], kPt, 0,
          kDownBits, 0, 0, dn.value, 1);
      if (rc != ptl::PTL_OK) co_return rc;
    }
    sched_.done_ct = dn.value;
    sched_.done_thr = 1;
  }
  sched_.start_ct = up.value;
  sched_.fresh = true;
  co_return ptl::PTL_OK;
}

// Recursive-doubling allreduce: per-round buffer B_k accumulates exactly
// two atomic-sum deposits — the round-k partner's partial and this rank's
// own (a triggered self-put over the network loopback).  ct_k hitting 2
// certifies B_k complete and fires both round-k+1 puts.
CoTask<int> Coll::arm_ar_recdbl(std::uint32_t count) {
  int rc = co_await teardown();
  if (rc != ptl::PTL_OK) co_return rc;
  ptl::Api& api = proc_.api();
  const int n = size();
  const int rounds = ceil_log2(n);
  const std::uint32_t bytes = count * 8;

  sched_.kind = OpKind::kArRecDbl;
  sched_.io_bytes = bytes;

  auto cts = co_await api.PtlCTAlloc();  // start counter
  if (cts.rc != ptl::PTL_OK) co_return cts.rc;
  sched_.cts.push_back(cts.value);
  std::vector<ptl::CtHandle> round_ct;
  for (int k = 0; k < rounds; ++k) {
    auto c = co_await api.PtlCTAlloc();
    if (c.rc != ptl::PTL_OK) co_return c.rc;
    sched_.cts.push_back(c.value);
    round_ct.push_back(c.value);
  }
  for (const ptl::CtHandle c : sched_.cts) {
    rc = co_await api.PtlCTSet(c, 0);
    if (rc != ptl::PTL_OK) co_return rc;
  }

  const std::uint64_t b_in = buf_slot(1, bytes);
  std::vector<std::uint64_t> b;
  for (int k = 0; k < rounds; ++k) {
    const std::uint64_t addr = buf_slot(2 + static_cast<std::size_t>(k),
                                        bytes);
    b.push_back(addr);
    zero_buf(addr, bytes);
    sched_.zero_addrs.push_back(addr);
    rc = co_await attach_ct_me(kRoundBase + static_cast<std::uint64_t>(k),
                               addr, bytes, round_ct[static_cast<std::size_t>(k)]);
    if (rc != ptl::PTL_OK) co_return rc;
  }

  // Source MDs: the input buffer feeds round 0, B_k feeds round k+1.
  std::vector<ptl::MdHandle> src_md;
  {
    ptl::MdDesc d;
    d.start = b_in;
    d.length = bytes;
    auto h = co_await api.PtlMDBind(d, ptl::Unlink::kRetain);
    if (h.rc != ptl::PTL_OK) co_return h.rc;
    sched_.mds.push_back(h.value);
    src_md.push_back(h.value);
  }
  for (int k = 0; k + 1 < rounds; ++k) {
    ptl::MdDesc d;
    d.start = b[static_cast<std::size_t>(k)];
    d.length = bytes;
    auto h = co_await api.PtlMDBind(d, ptl::Unlink::kRetain);
    if (h.rc != ptl::PTL_OK) co_return h.rc;
    sched_.mds.push_back(h.value);
    src_md.push_back(h.value);
  }

  for (int k = 0; k < rounds; ++k) {
    const int partner = rank_ ^ (1 << k);
    const ptl::MatchBits bits = kRoundBase + static_cast<std::uint64_t>(k);
    const ptl::CtHandle trig = k == 0 ? cts.value : round_ct[static_cast<std::size_t>(k - 1)];
    const std::uint64_t thr = k == 0 ? 1 : 2;
    const ptl::MdHandle md = src_md[static_cast<std::size_t>(k)];
    rc = co_await api.PtlTriggeredAtomicSum(
        md, 0, bytes, ranks_[static_cast<std::size_t>(partner)], kPt, 0,
        bits, 0, 0, trig, thr);
    if (rc != ptl::PTL_OK) co_return rc;
    rc = co_await api.PtlTriggeredAtomicSum(
        md, 0, bytes, ranks_[static_cast<std::size_t>(rank_)], kPt, 0, bits,
        0, 0, trig, thr);
    if (rc != ptl::PTL_OK) co_return rc;
  }

  sched_.start_ct = cts.value;
  sched_.done_ct = round_ct.back();
  sched_.done_thr = 2;
  sched_.in_addr = b_in;
  sched_.out_addr = b.back();
  sched_.fresh = true;
  co_return ptl::PTL_OK;
}

// k-ary tree allreduce: atomic-sum fan-in into B_up (children's triggered
// partials + the host's own contribution folded in at start), plain-put
// fan-out of the root's full sum through B_down.
CoTask<int> Coll::arm_ar_tree(std::uint32_t count) {
  int rc = co_await teardown();
  if (rc != ptl::PTL_OK) co_return rc;
  ptl::Api& api = proc_.api();
  const std::vector<int> kids = tree_children(rank_);
  const std::uint64_t arrivals = kids.size() + 1;
  const std::uint32_t bytes = count * 8;

  sched_.kind = OpKind::kArTree;
  sched_.io_bytes = bytes;

  auto up = co_await api.PtlCTAlloc();
  if (up.rc != ptl::PTL_OK) co_return up.rc;
  sched_.cts.push_back(up.value);
  auto dn = co_await api.PtlCTAlloc();
  if (dn.rc != ptl::PTL_OK) co_return dn.rc;
  sched_.cts.push_back(dn.value);
  for (const ptl::CtHandle c : sched_.cts) {
    rc = co_await api.PtlCTSet(c, 0);
    if (rc != ptl::PTL_OK) co_return rc;
  }

  const std::uint64_t b_up = buf_slot(1, bytes);
  const std::uint64_t b_dn = buf_slot(2, bytes);
  zero_buf(b_up, bytes);
  sched_.zero_addrs.push_back(b_up);
  rc = co_await attach_ct_me(kUpBits, b_up, bytes, up.value);
  if (rc != ptl::PTL_OK) co_return rc;
  rc = co_await attach_ct_me(kDownBits, b_dn, bytes, dn.value);
  if (rc != ptl::PTL_OK) co_return rc;

  ptl::MdHandle md_up, md_dn;
  {
    ptl::MdDesc d;
    d.start = b_up;
    d.length = bytes;
    auto h = co_await api.PtlMDBind(d, ptl::Unlink::kRetain);
    if (h.rc != ptl::PTL_OK) co_return h.rc;
    sched_.mds.push_back(h.value);
    md_up = h.value;
  }
  {
    ptl::MdDesc d;
    d.start = b_dn;
    d.length = bytes;
    auto h = co_await api.PtlMDBind(d, ptl::Unlink::kRetain);
    if (h.rc != ptl::PTL_OK) co_return h.rc;
    sched_.mds.push_back(h.value);
    md_dn = h.value;
  }

  if (rank_ == 0) {
    for (const int c : kids) {
      rc = co_await api.PtlTriggeredPut(
          md_up, 0, bytes, ranks_[static_cast<std::size_t>(c)], kPt, 0,
          kDownBits, 0, 0, up.value, arrivals);
      if (rc != ptl::PTL_OK) co_return rc;
    }
    sched_.done_ct = up.value;
    sched_.done_thr = arrivals;
    sched_.out_addr = b_up;
  } else {
    const int parent = tree_parent(rank_);
    rc = co_await api.PtlTriggeredAtomicSum(
        md_up, 0, bytes, ranks_[static_cast<std::size_t>(parent)], kPt, 0,
        kUpBits, 0, 0, up.value, arrivals);
    if (rc != ptl::PTL_OK) co_return rc;
    for (const int c : kids) {
      rc = co_await api.PtlTriggeredPut(
          md_dn, 0, bytes, ranks_[static_cast<std::size_t>(c)], kPt, 0,
          kDownBits, 0, 0, dn.value, 1);
      if (rc != ptl::PTL_OK) co_return rc;
    }
    sched_.done_ct = dn.value;
    sched_.done_thr = 1;
    sched_.out_addr = b_dn;
  }
  sched_.start_ct = up.value;
  sched_.in_addr = b_up;
  sched_.accumulate_in = true;
  sched_.fresh = true;
  co_return ptl::PTL_OK;
}

// k-ary tree bcast rooted at `root` (virtual ranks rotate the tree).
CoTask<int> Coll::arm_bcast(std::uint32_t len, int root) {
  int rc = co_await teardown();
  if (rc != ptl::PTL_OK) co_return rc;
  ptl::Api& api = proc_.api();
  const int n = size();
  const int v = (rank_ - root + n) % n;

  sched_.kind = OpKind::kBcast;
  sched_.io_bytes = len;
  sched_.root = root;

  auto ct = co_await api.PtlCTAlloc();
  if (ct.rc != ptl::PTL_OK) co_return ct.rc;
  sched_.cts.push_back(ct.value);
  rc = co_await api.PtlCTSet(ct.value, 0);
  if (rc != ptl::PTL_OK) co_return rc;

  const std::uint64_t b = buf_slot(1, len);
  rc = co_await attach_ct_me(kBcastBits, b, len, ct.value);
  if (rc != ptl::PTL_OK) co_return rc;

  ptl::MdDesc d;
  d.start = b;
  d.length = len;
  auto smd = co_await api.PtlMDBind(d, ptl::Unlink::kRetain);
  if (smd.rc != ptl::PTL_OK) co_return smd.rc;
  sched_.mds.push_back(smd.value);

  for (const int vc : tree_children(v)) {
    const int child = (vc + root) % n;
    rc = co_await api.PtlTriggeredPut(
        smd.value, 0, len, ranks_[static_cast<std::size_t>(child)], kPt, 0,
        kBcastBits, 0, 0, ct.value, 1);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  sched_.done_ct = ct.value;
  sched_.done_thr = 1;
  if (v == 0) {
    sched_.in_addr = b;
    sched_.start_ct = ct.value;
  }
  sched_.out_addr = b;
  sched_.fresh = true;
  co_return ptl::PTL_OK;
}

// ----------------------------------------------------------- preparing ----

CoTask<int> Coll::prepare_barrier(BarrierAlgo algo) {
  if (cfg_.mode == Mode::kHost || size() == 1) co_return ptl::PTL_OK;
  const OpKind want = algo == BarrierAlgo::kDissemination
                          ? OpKind::kBarDissem
                          : OpKind::kBarTree;
  if (sched_.kind == want) co_return ptl::PTL_OK;
  if (want == OpKind::kBarDissem) co_return co_await arm_bar_dissem();
  co_return co_await arm_bar_tree();
}

CoTask<int> Coll::prepare_allreduce(AllreduceAlgo algo, std::uint32_t count) {
  if (cfg_.mode == Mode::kHost || size() == 1) co_return ptl::PTL_OK;
  const bool recdbl =
      algo == AllreduceAlgo::kRecursiveDoubling && is_pow2(size());
  const OpKind want = recdbl ? OpKind::kArRecDbl : OpKind::kArTree;
  if (sched_.kind == want && sched_.io_bytes == count * 8) {
    co_return ptl::PTL_OK;
  }
  if (recdbl) co_return co_await arm_ar_recdbl(count);
  co_return co_await arm_ar_tree(count);
}

CoTask<int> Coll::prepare_bcast(std::uint32_t len, int root) {
  if (cfg_.mode == Mode::kHost || size() == 1) co_return ptl::PTL_OK;
  if (sched_.kind == OpKind::kBcast && sched_.io_bytes == len &&
      sched_.root == root) {
    co_return ptl::PTL_OK;
  }
  co_return co_await arm_bcast(len, root);
}

// ----------------------------------------------------------- operations ----

CoTask<int> Coll::barrier(BarrierAlgo algo) {
  if (size() == 1) co_return ptl::PTL_OK;
  if (cfg_.mode == Mode::kHost) {
    if (algo == BarrierAlgo::kDissemination) {
      co_return co_await host_barrier_dissem();
    }
    co_return co_await host_barrier_tree();
  }
  const int rc = co_await prepare_barrier(algo);
  if (rc != ptl::PTL_OK) co_return rc;
  co_return co_await run_armed(0);
}

CoTask<int> Coll::allreduce(AllreduceAlgo algo, std::uint64_t buf,
                            std::uint32_t count) {
  if (size() == 1) co_return ptl::PTL_OK;
  if (cfg_.mode == Mode::kHost) {
    if (algo == AllreduceAlgo::kRecursiveDoubling && is_pow2(size())) {
      // The mpi layer's allreduce_sum runs recursive doubling for
      // power-of-two communicators.
      co_return co_await comm_->allreduce_sum(buf, count);
    }
    co_return co_await host_allreduce_tree(buf, count);
  }
  const int rc = co_await prepare_allreduce(algo, count);
  if (rc != ptl::PTL_OK) co_return rc;
  co_return co_await run_armed(buf);
}

CoTask<int> Coll::bcast(std::uint64_t buf, std::uint32_t len, int root) {
  if (size() == 1) co_return ptl::PTL_OK;
  if (cfg_.mode == Mode::kHost) co_return co_await host_bcast_tree(buf, len, root);
  const int rc = co_await prepare_bcast(len, root);
  if (rc != ptl::PTL_OK) co_return rc;
  co_return co_await run_armed(buf);
}

// ------------------------------------------------------------ host mode ----

CoTask<int> Coll::host_barrier_dissem() {
  const int n = size();
  const std::uint64_t stok = buf_slot(0, 16);
  const std::uint64_t rtok = stok + 8;
  for (int k = 0; (1 << k) < n; ++k) {
    const int dist = 1 << k;
    const int dst = (rank_ + dist) % n;
    const int src = (rank_ - dist + n) % n;
    const int rc = co_await comm_->sendrecv(stok, 8, dst, kTagBar + k, rtok,
                                            8, src, kTagBar + k);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  co_return ptl::PTL_OK;
}

CoTask<int> Coll::host_barrier_tree() {
  const std::uint64_t stok = buf_slot(0, 16);
  const std::uint64_t rtok = stok + 8;
  const std::vector<int> kids = tree_children(rank_);
  for (const int c : kids) {
    const int rc = co_await comm_->recv(rtok, 8, c, kTagUp);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  if (rank_ != 0) {
    const int parent = tree_parent(rank_);
    int rc = co_await comm_->send(stok, 8, parent, kTagUp);
    if (rc != ptl::PTL_OK) co_return rc;
    rc = co_await comm_->recv(rtok, 8, parent, kTagDown);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  for (const int c : kids) {
    const int rc = co_await comm_->send(stok, 8, c, kTagDown);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  co_return ptl::PTL_OK;
}

CoTask<int> Coll::host_allreduce_tree(std::uint64_t buf,
                                      std::uint32_t count) {
  const std::uint32_t bytes = count * 8;
  const std::uint64_t tmp = buf_slot(1, bytes);
  std::vector<double> mine(count), theirs(count);
  proc_.read_bytes(buf, std::as_writable_bytes(std::span(mine)));
  for (const int c : tree_children(rank_)) {
    const int rc = co_await comm_->recv(tmp, bytes, c, kTagArU);
    if (rc != ptl::PTL_OK) co_return rc;
    proc_.read_bytes(tmp, std::as_writable_bytes(std::span(theirs)));
    co_await proc_.node().cpu().run(sum_cost(count));
    for (std::uint32_t i = 0; i < count; ++i) mine[i] += theirs[i];
  }
  proc_.write_bytes(buf, std::as_bytes(std::span(mine)));
  if (rank_ != 0) {
    const int parent = tree_parent(rank_);
    int rc = co_await comm_->send(buf, bytes, parent, kTagArU);
    if (rc != ptl::PTL_OK) co_return rc;
    rc = co_await comm_->recv(buf, bytes, parent, kTagArD);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  for (const int c : tree_children(rank_)) {
    const int rc = co_await comm_->send(buf, bytes, c, kTagArD);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  co_return ptl::PTL_OK;
}

CoTask<int> Coll::host_bcast_tree(std::uint64_t buf, std::uint32_t len,
                                  int root) {
  const int n = size();
  const int v = (rank_ - root + n) % n;
  if (v != 0) {
    const int parent = (tree_parent(v) + root) % n;
    const int rc = co_await comm_->recv(buf, len, parent, kTagBc);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  for (const int vc : tree_children(v)) {
    const int child = (vc + root) % n;
    const int rc = co_await comm_->send(buf, len, child, kTagBc);
    if (rc != ptl::PTL_OK) co_return rc;
  }
  co_return ptl::PTL_OK;
}

}  // namespace xt::coll
