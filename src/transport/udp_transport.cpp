#include "transport/udp_transport.hpp"

#include <arpa/inet.h>
#include <cassert>
#include <cerrno>
#include <cstring>

#include "net/crc.hpp"
#include <poll.h>
#include <stdexcept>
#include <string>
#include <sys/socket.h>
#include <unistd.h>

namespace xt::transport {

namespace {

constexpr std::uint32_t kMagic = 0x31505458;  // "XTP1"

enum : std::uint8_t { kFragHeader = 0, kFragPayload = 1, kCtrl = 2 };

// On-wire datagram prefix.  Loopback-only, so native byte order is fine;
// every field is fixed-width and the struct is trivially copyable.
struct FragHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t type = kFragHeader;
  std::uint8_t flags = 0;  // ctrl: bit0 = done
  std::uint16_t reserved = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t seq = 0;  // ctrl: barrier round
  std::uint32_t e2e_crc = 0;
  std::uint32_t header_len = 0;   // total header-packet bytes
  std::uint32_t payload_len = 0;  // total message payload bytes
  std::uint32_t frag_off = 0;
  std::uint32_t frag_len = 0;
};
static_assert(sizeof(FragHeader) == 48);

/// Reassembly partials that lost a fragment never complete (go-back-n
/// retransmits under a fresh seq); reap them after this much wall time.
constexpr std::int64_t kPartialTtlPs = sim::Time::sec(2).to_ps();
constexpr std::int64_t kGcIntervalPs = sim::Time::ms(500).to_ps();

void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

// ------------------------------------------------------------------------
// UdpFabric

UdpFabric::UdpFabric(int ranks, const UdpConfig& cfg) {
  fds_.reserve(static_cast<std::size_t>(ranks));
  addrs_.resize(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    if (fd < 0) throw_errno("udp fabric: socket");
    fds_.push_back(fd);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &cfg.sndbuf_bytes,
                 sizeof(cfg.sndbuf_bytes));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &cfg.rcvbuf_bytes,
                 sizeof(cfg.rcvbuf_bytes));
    sockaddr_in a{};
    a.sin_family = AF_INET;
    a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    a.sin_port = 0;  // kernel-assigned
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&a), sizeof(a)) != 0) {
      throw_errno("udp fabric: bind");
    }
    socklen_t alen = sizeof(a);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&a), &alen) != 0) {
      throw_errno("udp fabric: getsockname");
    }
    addrs_[static_cast<std::size_t>(r)] = a;
  }
}

UdpFabric::~UdpFabric() {
  for (int fd : fds_) ::close(fd);
}

// ------------------------------------------------------------------------
// UdpTransport

UdpTransport::UdpTransport(sim::Engine& eng, UdpFabric& fabric,
                           net::NodeId self, net::Shape shape, UdpConfig cfg)
    : eng_(eng),
      fabric_(fabric),
      self_(self),
      shape_(std::move(shape)),
      cfg_(cfg),
      drop_rng_(cfg.drop_seed * 0x9e3779b97f4a7c15ull + self + 1),
      ctrl_wq_(eng),
      peer_round_(static_cast<std::size_t>(fabric.ranks()), 0),
      peer_done_(static_cast<std::size_t>(fabric.ranks()), 0) {
  rxbuf_.resize(sizeof(FragHeader) + cfg_.frag_bytes + 4096);
}

void UdpTransport::attach(net::NodeId node, net::Endpoint& ep) {
  assert(node == self_ && "UdpTransport serves exactly its own rank");
  (void)node;
  ep_ = &ep;
}

void UdpTransport::begin(const net::MessagePtr& msg) {
  // Fold the sender's node id into the high bits: firmware rx maps are
  // keyed by seq across all sources, so seqs must be globally unique.
  msg->seq = (static_cast<std::uint64_t>(self_) + 1) << 40 | ++next_seq_;
  msg->injected_at = eng_.now();
  // Same contract as Network::begin: seal a CRC over the header and the
  // (still-unread) payload buffer.  For header-only messages this is the
  // final value — the sending DMA engine only re-seals when it streams
  // payload bytes.
  std::uint32_t c = net::crc32_init();
  c = net::crc32_update(c, msg->header);
  c = net::crc32_update(c, msg->payload);
  msg->e2e_crc = net::crc32_finish(c);
}

void UdpTransport::inject_header(const net::MessagePtr& msg) {
  // Header-only messages are complete here; the DMA engine never calls
  // inject_payload for them.  Messages with payload transmit on the final
  // inject_payload, once the payload buffer is filled and the CRC sealed.
  if (msg->payload.empty()) transmit_message(msg);
}

void UdpTransport::inject_payload(const net::MessagePtr& msg,
                                  std::size_t offset, std::size_t len,
                                  bool last) {
  // The sending DMA engine fills msg->payload in order and seals e2e_crc
  // before the last chunk, so the message is only wire-ready now.
  (void)offset;
  (void)len;
  if (last) transmit_message(msg);
}

void UdpTransport::transmit_message(const net::MessagePtr& msg) {
  FragHeader fh;
  fh.src = msg->src;
  fh.dst = msg->dst;
  fh.seq = msg->seq;
  fh.e2e_crc = msg->e2e_crc;
  fh.header_len = static_cast<std::uint32_t>(msg->header.size());
  fh.payload_len = static_cast<std::uint32_t>(msg->payload.size());

  std::vector<std::byte> buf(sizeof(FragHeader) + cfg_.frag_bytes);

  // Fragment 0: the 64-byte header packet.
  fh.type = kFragHeader;
  fh.frag_off = 0;
  fh.frag_len = fh.header_len;
  std::memcpy(buf.data(), &fh, sizeof(fh));
  std::memcpy(buf.data() + sizeof(fh), msg->header.data(),
              msg->header.size());
  send_datagram(msg->dst, buf.data(), sizeof(fh) + msg->header.size(),
                /*droppable=*/true);

  // Payload fragments.
  fh.type = kFragPayload;
  for (std::size_t off = 0; off < msg->payload.size();
       off += cfg_.frag_bytes) {
    const std::size_t n = std::min(cfg_.frag_bytes, msg->payload.size() - off);
    fh.frag_off = static_cast<std::uint32_t>(off);
    fh.frag_len = static_cast<std::uint32_t>(n);
    std::memcpy(buf.data(), &fh, sizeof(fh));
    std::memcpy(buf.data() + sizeof(fh), msg->payload.data() + off, n);
    send_datagram(msg->dst, buf.data(), sizeof(fh) + n, /*droppable=*/true);
  }
}

void UdpTransport::send_datagram(net::NodeId dst, const void* buf,
                                 std::size_t len, bool droppable) {
  if (droppable && cfg_.drop_rate > 0.0 && drop_rng_.chance(cfg_.drop_rate)) {
    ++drops_injected_;
    return;
  }
  const sockaddr_in& peer = fabric_.addr(static_cast<int>(dst));
  const ssize_t rc =
      ::sendto(fabric_.fd(static_cast<int>(self_)), buf, len, 0,
               reinterpret_cast<const sockaddr*>(&peer), sizeof(peer));
  if (rc < 0) {
    // EAGAIN / ENOBUFS are genuine transmit losses; let go-back-n (data)
    // or the periodic rebroadcast (ctrl) recover them.
    if (droppable) ++send_failures_;
    return;
  }
  ++datagrams_sent_;
}

int UdpTransport::poll() {
  int consumed = 0;
  const int fd = fabric_.fd(static_cast<int>(self_));
  for (;;) {
    const ssize_t rc = ::recv(fd, rxbuf_.data(), rxbuf_.size(), 0);
    if (rc < 0) break;  // EAGAIN: drained
    ++datagrams_received_;
    ++consumed;
    // Stamp this datagram's deliveries at its real arrival instant, not at
    // whatever wall reading the driver loop last synced to — under load the
    // engine batch before poll() can eat a millisecond of real time, and
    // arrivals during a long drain would otherwise all share one stale
    // timestamp (receive stamps earlier than the sender's send time).
    sync_clock();
    handle_datagram(rxbuf_.data(), static_cast<std::size_t>(rc));
  }
  if (!partials_.empty() &&
      eng_.now().to_ps() - last_gc_ps_ > kGcIntervalPs) {
    gc_partials();
  }
  return consumed;
}

void UdpTransport::handle_datagram(const std::byte* buf, std::size_t len) {
  if (len < sizeof(FragHeader)) return;
  FragHeader fh;
  std::memcpy(&fh, buf, sizeof(fh));
  if (fh.magic != kMagic) return;

  if (fh.type == kCtrl) {
    const auto src = static_cast<std::size_t>(fh.src);
    if (src < peer_round_.size()) {
      peer_round_[src] = std::max(peer_round_[src], fh.seq);
      peer_done_[src] = static_cast<std::uint8_t>(peer_done_[src] |
                                                  (fh.flags & 1u));
    }
    ctrl_wq_.notify_all();
    return;
  }

  if (len < sizeof(FragHeader) + fh.frag_len) return;  // truncated

  Partial& p = partials_[fh.seq];
  if (!p.msg) {
    p.msg = std::make_shared<net::Message>();
    p.msg->src = fh.src;
    p.msg->dst = fh.dst;
    p.msg->seq = fh.seq;
    p.msg->e2e_crc = fh.e2e_crc;
    p.msg->payload.resize(fh.payload_len);
    p.first_at = eng_.now();
  }

  if (fh.type == kFragHeader) {
    if (!p.header_seen) {
      p.header_seen = true;
      p.msg->header.assign(buf + sizeof(fh), buf + sizeof(fh) + fh.frag_len);
    }
  } else if (fh.type == kFragPayload) {
    if (fh.frag_off + static_cast<std::uint64_t>(fh.frag_len) >
        p.msg->payload.size()) {
      return;  // malformed
    }
    const std::size_t idx = fh.frag_off / cfg_.frag_bytes;
    if (p.got_frag.size() <= idx) p.got_frag.resize(idx + 1, false);
    if (!p.got_frag[idx]) {
      p.got_frag[idx] = true;
      std::memcpy(p.msg->payload.data() + fh.frag_off, buf + sizeof(fh),
                  fh.frag_len);
      p.bytes += fh.frag_len;
    }
  }

  if (p.header_seen && p.bytes == p.msg->payload.size()) {
    net::MessagePtr msg = std::move(p.msg);
    partials_.erase(fh.seq);
    deliver(msg);
  }
}

void UdpTransport::deliver(const net::MessagePtr& msg) {
  msg->header_at = eng_.now();
  msg->completed_at = eng_.now();
  if (!ep_) return;
  // Back-to-back milestones: over UDP the whole message materializes at
  // once, which the Rx path already supports (the sim fabric delivers
  // inline messages the same way).
  ep_->on_header(msg);
  ep_->on_complete(msg);
}

void UdpTransport::sync_clock() {
  if (!wall_clock_) return;
  const std::int64_t wall = wall_clock_();
  if (wall > eng_.now().to_ps()) eng_.run_until(sim::Time::ps(wall));
}

void UdpTransport::gc_partials() {
  const std::int64_t now_ps = eng_.now().to_ps();
  last_gc_ps_ = now_ps;
  for (auto it = partials_.begin(); it != partials_.end();) {
    if (now_ps - it->second.first_at.to_ps() > kPartialTtlPs) {
      it = partials_.erase(it);
    } else {
      ++it;
    }
  }
}

void UdpTransport::wait_readable(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fabric_.fd(static_cast<int>(self_));
  pfd.events = POLLIN;
  ::poll(&pfd, 1, timeout_ms);
}

// ------------------------------------------------------------------------
// Control plane

void UdpTransport::broadcast_ctrl() {
  FragHeader fh;
  fh.type = kCtrl;
  fh.src = self_;
  fh.seq = my_round_;
  fh.flags = done_ ? 1 : 0;
  for (int r = 0; r < fabric_.ranks(); ++r) {
    if (static_cast<net::NodeId>(r) == self_) continue;
    fh.dst = static_cast<std::uint32_t>(r);
    send_datagram(static_cast<net::NodeId>(r), &fh, sizeof(fh),
                  /*droppable=*/false);
  }
}

void UdpTransport::barrier_enter() {
  ++my_round_;
  broadcast_ctrl();
}

bool UdpTransport::barrier_released() const {
  for (std::size_t r = 0; r < peer_round_.size(); ++r) {
    if (r == self_) continue;
    if (peer_round_[r] < my_round_) return false;
  }
  return true;
}

bool UdpTransport::peers_done() const {
  for (std::size_t r = 0; r < peer_done_.size(); ++r) {
    if (r == self_) continue;
    if (!peer_done_[r]) return false;
  }
  return true;
}

}  // namespace xt::transport
