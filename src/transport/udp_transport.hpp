#pragma once

// Real UDP loopback backend: the same Portals/firmware stack serving live
// multi-process traffic (ROADMAP item 2, the bxipkt_udp.c analogue).
//
// Each rank owns one datagram socket bound to 127.0.0.1 (the UdpFabric
// opens all of them up front so every rank knows every peer's port before
// any thread starts).  A net::Message becomes one or more datagrams: the
// first fragment carries the 64-byte header packet and the message's
// end-to-end CRC, later fragments carry payload slices.  Reassembly is
// keyed on the message sequence number, which the sender makes globally
// unique by folding its node id into the high bits — the firmware's
// go-back-n bookkeeping (inflight maps keyed by seq) relies on that.
//
// Loss is real: the kernel drops datagrams when a socket buffer overruns,
// and the backend can additionally drop outgoing datagrams with a seeded
// RNG (drop_rate) to exercise recovery deterministically.  Either way the
// firmware's go-back-n protocol — the same code the sim backend runs —
// detects the gap via WireHeader::stream_seq and rewinds.  Run it with a
// config from host::live_udp_config(): go-back-n on, watchdog timeouts
// scaled from microsecond sim-fabric values to wall-clock socket RTTs.
//
// Threading: one UdpTransport belongs to one rank thread, the one driving
// its sim::Engine in realtime (host::LiveCluster).  poll() is called
// between engine batches on that thread, so delivery callbacks run in
// engine context; only the socket itself is shared with peer threads (the
// kernel serializes datagram sends/receives).
//
// A side control channel (broadcast_ctrl / poll) carries each rank's
// barrier round and done flag for app-level rendezvous and run
// termination; it is retransmitted periodically by the driver loop, so
// control losses only cost latency.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <netinet/in.h>
#include <unordered_map>
#include <vector>

#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "transport/transport.hpp"

namespace xt::transport {

struct UdpConfig {
  /// Injected egress loss: each outgoing data datagram is dropped with
  /// this probability (seeded, deterministic per rank).  Exercises the
  /// same go-back-n recovery that real socket-buffer overruns need.
  double drop_rate = 0.0;
  std::uint64_t drop_seed = 1;
  /// Payload bytes per datagram (the loopback MTU is ~64 KB; staying well
  /// below leaves room for the fragment header).
  std::size_t frag_bytes = 32 * 1024;
  /// DMA streaming granularity reported to the sending NIC.  Larger than
  /// the sim fabric's 2 KB: wall-clock runs gain nothing from fine-grained
  /// virtual pipelining events.
  std::size_t chunk_size = 32 * 1024;
  int sndbuf_bytes = 4 << 20;
  int rcvbuf_bytes = 4 << 20;
};

/// All ranks' sockets, opened and bound before any rank thread starts so
/// the rank -> (fd, port) table is immutable while threads run.
class UdpFabric {
 public:
  explicit UdpFabric(int ranks, const UdpConfig& cfg = {});
  ~UdpFabric();
  UdpFabric(const UdpFabric&) = delete;
  UdpFabric& operator=(const UdpFabric&) = delete;

  int ranks() const { return static_cast<int>(fds_.size()); }
  int fd(int rank) const { return fds_[static_cast<std::size_t>(rank)]; }
  const sockaddr_in& addr(int rank) const {
    return addrs_[static_cast<std::size_t>(rank)];
  }

 private:
  std::vector<int> fds_;
  std::vector<sockaddr_in> addrs_;
};

class UdpTransport final : public Transport {
 public:
  UdpTransport(sim::Engine& eng, UdpFabric& fabric, net::NodeId self,
               net::Shape shape, UdpConfig cfg = {});

  // ------------------------------------------------------- Transport ----
  Kind kind() const override { return Kind::kUdp; }
  const net::Shape& shape() const override { return shape_; }
  std::size_t chunk_size() const override { return cfg_.chunk_size; }
  void attach(net::NodeId node, net::Endpoint& ep) override;
  void begin(const net::MessagePtr& msg) override;
  void inject_header(const net::MessagePtr& msg) override;
  void inject_payload(const net::MessagePtr& msg, std::size_t offset,
                      std::size_t len, bool last) override;
  /// Datagrams this backend dropped before the wire (injected loss plus
  /// kernel send-buffer refusals) — each is a loss go-back-n must recover.
  std::uint64_t total_retries() const override {
    return drops_injected_ + send_failures_;
  }

  // ----------------------------------------- realtime driver surface ----
  /// Drains the socket, delivering completed messages into the attached
  /// endpoint and folding control datagrams into the peer table.  Returns
  /// the number of datagrams consumed.  Must run on the engine thread.
  int poll();
  /// Blocks up to `timeout_ms` for the socket to become readable (0 = just
  /// check).  The driver calls this when the engine is idle.
  void wait_readable(int timeout_ms);
  /// Realtime drivers install their wall-clock reader (picoseconds since
  /// the shared epoch) here.  poll() then advances the engine to the
  /// current wall instant before handling each datagram, so deliveries are
  /// stamped at (or after) their real arrival time — without this, a long
  /// event batch or drain leaves eng.now() stale and receive-side stamps
  /// can precede the sender's send time.  Unset (single-threaded rigs):
  /// the engine clock is never touched by poll().
  void set_wall_clock(std::function<std::int64_t()> clock) {
    wall_clock_ = std::move(clock);
  }

  // ------------------------------------- control plane (ctrl frames) ----
  /// Sends this rank's (barrier round, done flag) to every peer.  The
  /// driver re-broadcasts periodically, so a lost ctrl frame only delays.
  void broadcast_ctrl();
  void set_done() { done_ = true; }
  bool done() const { return done_; }
  /// Enters the next barrier round and broadcasts it.
  void barrier_enter();
  std::uint64_t barrier_round() const { return my_round_; }
  /// True when every peer has reached (at least) this rank's round.
  bool barrier_released() const;
  /// True when every peer has signalled done.
  bool peers_done() const;
  /// Notified on every ctrl frame arrival (barrier waiters park here).
  sim::WaitQueue& ctrl_wq() { return ctrl_wq_; }

  // ------------------------------------------------------------ stats ----
  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t datagrams_received() const { return datagrams_received_; }
  std::uint64_t drops_injected() const { return drops_injected_; }
  std::uint64_t send_failures() const { return send_failures_; }

 private:
  struct Partial {
    net::MessagePtr msg;
    std::size_t bytes = 0;          ///< payload bytes received so far
    std::vector<bool> got_frag;     ///< per-fragment dedup bitmap
    bool header_seen = false;
    sim::Time first_at{};           ///< arrival of the first fragment (GC)
  };

  void send_datagram(net::NodeId dst, const void* buf, std::size_t len,
                     bool droppable);
  void transmit_message(const net::MessagePtr& msg);
  void handle_datagram(const std::byte* buf, std::size_t len);
  void deliver(const net::MessagePtr& msg);
  /// Catches the engine clock up to the driver's wall clock (no-op when no
  /// wall clock is installed).  Only legal outside engine event context —
  /// poll() qualifies, it runs between engine batches.
  void sync_clock();
  /// Drops reassembly state whose retransmission superseded it (go-back-n
  /// resends a message under a fresh seq, so partials with lost fragments
  /// never complete on their own).
  void gc_partials();

  sim::Engine& eng_;
  UdpFabric& fabric_;
  net::NodeId self_;
  net::Shape shape_;
  UdpConfig cfg_;
  net::Endpoint* ep_ = nullptr;
  std::function<std::int64_t()> wall_clock_;
  sim::Rng drop_rng_;
  std::uint64_t next_seq_ = 0;

  std::unordered_map<std::uint64_t, Partial> partials_;
  std::vector<std::byte> rxbuf_;
  std::int64_t last_gc_ps_ = 0;

  // Control plane.
  sim::WaitQueue ctrl_wq_;
  std::uint64_t my_round_ = 0;
  bool done_ = false;
  std::vector<std::uint64_t> peer_round_;
  std::vector<std::uint8_t> peer_done_;

  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t datagrams_received_ = 0;
  std::uint64_t drops_injected_ = 0;
  std::uint64_t send_failures_ = 0;
};

}  // namespace xt::transport
