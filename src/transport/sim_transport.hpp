#pragma once

// The DES SeaStar wire model re-homed as a Transport backend.
//
// Pure delegation to net::Network — every call forwards unchanged, so a
// Machine built over SimTransport is event-for-event identical to one
// that handed the Network to its NICs directly (the golden-output tests
// hold this to byte-identical stdout).

#include "net/network.hpp"
#include "transport/transport.hpp"

namespace xt::transport {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(net::Network& net) : net_(net) {}

  Kind kind() const override { return Kind::kSim; }
  const net::Shape& shape() const override { return net_.shape(); }
  std::size_t chunk_size() const override { return net_.chunk_size(); }
  void attach(net::NodeId node, net::Endpoint& ep) override {
    net_.attach(node, ep);
  }
  void begin(const net::MessagePtr& msg) override { net_.begin(msg); }
  void inject_header(const net::MessagePtr& msg) override {
    net_.inject_header(msg);
  }
  void inject_payload(const net::MessagePtr& msg, std::size_t offset,
                      std::size_t len, bool last) override {
    net_.inject_payload(msg, offset, len, last);
  }
  std::uint64_t total_retries() const override {
    return net_.total_retries();
  }

  net::Network& network() { return net_; }

 private:
  net::Network& net_;
};

}  // namespace xt::transport
