#pragma once

// The pluggable packet layer beneath the NAL (ROADMAP item 2).
//
// The paper's central architectural claim (§3.1-3.2) is that one
// platform-independent Portals library runs over many NALs.  This seam is
// the packet-layer half of that claim, mirroring the swappable bxipkt
// layer of the BullSequana portails4 stack: everything above it — the
// firmware's go-back-n, the Portals library, mini-MPI, NetPIPE — is
// transport-agnostic, and everything below it is one of two backends:
//
//   * sim  — the DES SeaStar wire model (net::Network): simulated links,
//            simulated time, deterministic fault injection;
//   * udp  — real UDP loopback sockets: each rank is a real host thread,
//            engine time tracks the wall clock, and packet loss is real
//            (plus optionally injected), recovered by the same go-back-n
//            firmware that the sim backend exercises.
//
// The interface is exactly the Network-facing surface the SeaStar Tx DMA
// engine uses: begin / inject_header / inject_payload feed a message onto
// the wire as the DMA engine reads bytes out of host memory; delivery
// comes back through the net::Endpoint the receiving NIC registered with
// attach().  A backend must deliver between a (src, dst) pair in
// injection order (the in-order guarantee the paper attributes to the
// table-based routers) or rely on the firmware's go-back-n to restore it.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "net/coord.hpp"
#include "net/message.hpp"

namespace xt::transport {

enum class Kind : std::uint8_t { kSim, kUdp };

const char* kind_name(Kind k);
std::optional<Kind> kind_from_name(std::string_view name);

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Kind kind() const = 0;

  /// Machine topology as seen by this backend.  The sim backend routes on
  /// it; the udp backend only uses it for node count and the PtlNIDist
  /// distance metric (all loopback peers are one real hop away).
  virtual const net::Shape& shape() const = 0;

  /// Transfer granularity the sending DMA engine should stream at.
  virtual std::size_t chunk_size() const = 0;

  /// Registers the receive endpoint (the NIC) for a node.
  virtual void attach(net::NodeId node, net::Endpoint& ep) = 0;

  /// Starts a message: assigns its sequence number and injection
  /// timestamp.  The caller then feeds the wire with inject_header /
  /// inject_payload as it reads bytes out of host memory; msg->e2e_crc
  /// must be sealed before the last inject_payload call (header-only
  /// messages seal it in begin()).
  virtual void begin(const net::MessagePtr& msg) = 0;

  /// Injects the 64-byte header packet.
  virtual void inject_header(const net::MessagePtr& msg) = 0;

  /// Injects payload bytes [offset, offset+len).  `last` marks the final
  /// chunk; its arrival triggers Endpoint::on_complete at the far side.
  virtual void inject_payload(const net::MessagePtr& msg, std::size_t offset,
                              std::size_t len, bool last) = 0;

  /// Link-level retries (sim: CRC retry protocol) or datagrams the
  /// backend itself dropped before transmission (udp: injected loss +
  /// kernel buffer overruns) — the transport's own loss accounting,
  /// distinct from the firmware's end-to-end counters.
  virtual std::uint64_t total_retries() const = 0;
};

}  // namespace xt::transport
