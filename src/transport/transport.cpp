#include "transport/transport.hpp"

namespace xt::transport {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kSim: return "sim";
    case Kind::kUdp: return "udp";
  }
  return "?";
}

std::optional<Kind> kind_from_name(std::string_view name) {
  if (name == "sim") return Kind::kSim;
  if (name == "udp") return Kind::kUdp;
  return std::nullopt;
}

}  // namespace xt::transport
