#pragma once

// One-sided communication conduit over the Portals 3.3 public API.
//
// A thin GASNet-style layer (the axiom-evi portals-conduit is the model)
// with three pieces:
//
//   * Active messages.  am_request() delivers (handler index, 24-bit
//     immediate, payload <= am_medium_max bytes) to a peer; the peer's
//     handler runs from whichever coroutine is progressing the conduit
//     (GASNet polling semantics) and may am_reply() exactly once — if it
//     does not, the conduit sends an implicit zero-byte reply so the
//     request token always resolves.  Payloads <= 64 bytes count as
//     "short" AMs, larger ones as "medium" (conduit.nN.am_short /
//     am_medium counters).
//
//   * Flow control.  Each peer pre-posts `credits` request slots and
//     `credits` reply slots (match entries + buffers on kPtAm, one
//     message each).  A sender holds one credit per outstanding request
//     and blocks (conduit.nN.credits_stalled) when the peer's window is
//     exhausted; the credit returns with the reply.  Because a slot is
//     reposted *before* its handler runs or its reply is sent, at most
//     `credits` messages can ever race a slot — the match list can never
//     be overrun and no AM is ever dropped for want of a buffer.
//
//   * Segment + put/get.  init() registers one remotely addressable
//     region per rank (match entry on kPtSeg, persistent MD).  put()/
//     get() move bytes between local virtual addresses and a peer's
//     segment offset, with optional completion counters: local (source
//     buffer reusable, SEND_END), remote (bytes visible at the target,
//     Portals ack) and get completion (REPLY_END).  Offsets are range-
//     checked overflow-safely before anything is issued (PTL_SEGV on
//     violation), mirroring the AddressSpace::valid guard.  Deposits
//     into the local segment are counted for neighbour-sync
//     (wait_deposits); on accelerated bridges the count lives in a
//     firmware counting event (PTL_MD_EVENT_CT_PUT + PtlCTWait, zero
//     host events), on generic bridges the host pump counts kPutEnd.
//
// Progress is caller-driven: any coroutine blocked in wait()/
// am_request()/wait_deposits() polls the conduit event queue and
// dispatches what it finds, parking on the EQ's waiter queue when idle.
// Multiple coroutines may progress concurrently (closed-loop client
// windows); a single designated EQ-waiter plus a wakeup queue keeps the
// rest runnable without lost-wakeup races.

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "host/node.hpp"
#include "portals/api.hpp"
#include "sim/condition.hpp"
#include "sim/task.hpp"

namespace xt::telemetry {
struct Counter;
}

namespace xt::conduit {

/// Portal table indices (mpi owns 1-2, netpipe 3, workload/collective 0).
inline constexpr std::uint32_t kPtAm = 5;
inline constexpr std::uint32_t kPtSeg = 6;

struct Config {
  /// Remotely addressable bytes registered per rank (0: no segment —
  /// put/get against this rank return PTL_SEGV).
  std::uint32_t segment_bytes = 1u << 20;
  /// Segment size assumed at peers for put/get range validation; 0 means
  /// symmetric (segment_bytes).  Asymmetric deployments (KV clients with
  /// no local segment targeting fat servers) set this explicitly; the
  /// target library still enforces its real bounds either way.
  std::uint32_t peer_segment_bytes = 0;
  /// Per-peer AM request window (and pre-posted slot count, each way).
  /// 0 disables active messages entirely — no slots are posted, which
  /// keeps pure put/get ranks (KV servers, stencil) cheap in memory.
  int credits = 4;
  /// Largest AM payload (slot buffer size).
  std::uint32_t am_medium_max = 8192;
  /// Handler table size; set_handler() indices must be below this.
  std::size_t handler_slots = 64;
  /// 16-bit namespace mixed into every match pattern so concurrent
  /// tenants (cluster jobs) sharing a NIC never cross-match.
  std::uint16_t ns = 0;
  /// Count deposits into the local segment so wait_deposits() works.
  /// Off: the segment MD carries no event queue at all and remote puts
  /// cost this rank zero host events (pure-target KV servers).
  bool count_deposits = true;
  std::size_t eq_depth = 8192;
};

/// Arguments a request handler receives.  `payload` is library memory
/// (already copied out of the slot); reply at most once via am_reply().
struct AmArgs {
  int src = 0;
  std::uint8_t handler = 0;
  std::uint32_t imm = 0;  ///< 24-bit immediate from the request
  std::vector<std::byte> payload;
  bool replied = false;

 private:
  friend class Conduit;
  std::uint64_t token = 0;
};

/// What am_request() hands back from the peer's reply.
struct AmReply {
  std::uint32_t imm = 0;
  std::vector<std::byte> payload;
};

/// Completion counter for one-sided transfers: pending is incremented
/// when an op is issued against it and decremented by the completing
/// event.  Wait with Conduit::wait().
struct Completion {
  int pending = 0;
  bool done() const { return pending == 0; }
};

class Conduit {
 public:
  using Handler = std::function<sim::CoTask<void>(Conduit&, AmArgs&)>;

  /// `peers[i]` is the Portals id of rank i; `proc` must be peers[rank].
  Conduit(host::Process& proc, std::vector<ptl::ProcessId> peers, int rank,
          Config cfg = {});
  ~Conduit();

  /// Allocates the EQ, registers the segment and pre-posts every AM slot.
  /// Must complete on all ranks before traffic flows (spawn inits, then
  /// barrier / run to quiescence).
  sim::CoTask<int> init();

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(peers_.size()); }
  const Config& config() const { return cfg_; }
  host::Process& process() { return proc_; }
  /// True when deposit counting runs in NIC firmware (counting event)
  /// rather than host kPutEnd events.
  bool accel_deposits() const { return seg_ct_.valid(); }
  std::uint64_t segment_base() const { return seg_base_; }

  /// Registers `h` at handler table index `slot`; PTL_FAIL when out of
  /// range.  A request naming an empty slot gets an error reply
  /// (imm = 0xFFFFFF) instead of wedging the sender's token.
  int set_handler(std::size_t slot, Handler h);

  /// Sends an active message and blocks until the peer's reply resolves
  /// the token (taking one flow-control credit for the duration).
  /// Payloads above am_medium_max are rejected with PTL_SEGV.
  sim::CoTask<int> am_request(int dst, std::uint8_t handler,
                              std::span<const std::byte> payload,
                              std::uint32_t imm = 0,
                              AmReply* reply = nullptr);
  /// Replies to `req` from inside its handler (at most once).
  sim::CoTask<int> am_reply(AmArgs& req, std::span<const std::byte> payload,
                            std::uint32_t imm = 0);

  /// One-sided put: len bytes from local virtual address `laddr` into
  /// peer `dst`'s segment at offset `roff`.  `local` fires when the
  /// source buffer is reusable, `remote` when the bytes are visible at
  /// the target (requests a Portals ack only when non-null).
  sim::CoTask<int> put(int dst, std::uint64_t laddr, std::uint32_t len,
                       std::uint64_t roff, Completion* local = nullptr,
                       Completion* remote = nullptr);
  /// One-sided get: len bytes from peer `dst`'s segment at `roff` into
  /// local `laddr`; `done` fires when the reply has landed.
  sim::CoTask<int> get(int dst, std::uint64_t laddr, std::uint32_t len,
                       std::uint64_t roff, Completion* done = nullptr);

  /// Progresses the conduit until `c.pending == 0`.
  sim::CoTask<int> wait(Completion& c);

  /// Blocks until at least `threshold` puts have landed in the local
  /// segment since init (cumulative).  PTL_FAIL when deposit counting is
  /// disabled.
  sim::CoTask<int> wait_deposits(std::uint64_t threshold);

  struct Counters {
    std::uint64_t am_short = 0;    ///< requests sent, payload <= 64 B
    std::uint64_t am_medium = 0;   ///< requests sent, payload > 64 B
    std::uint64_t replies = 0;     ///< replies sent (explicit + implicit)
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t credits_stalled = 0;  ///< am_request blocked on window
  };
  const Counters& counters() const { return counters_; }

 private:
  struct Slot {
    std::uint64_t buf = 0;
    int peer = 0;
    bool request = false;  // request slot vs reply slot
  };
  struct Op {
    enum class Kind : std::uint8_t { kPut, kGet, kAmSend };
    Kind kind = Kind::kPut;
    Completion* local = nullptr;
    Completion* remote = nullptr;
    std::uint64_t stage = 0;  // AM staging buffer, recycled at SEND_END
  };
  struct PendingReq {
    bool done = false;
    AmReply* reply = nullptr;
  };

  std::uint64_t am_bits(int src_rank, bool request) const;
  std::uint64_t seg_bits() const;
  sim::CoTask<int> post_slot(std::size_t idx);
  sim::CoTask<int> setup_segment();
  sim::CoTask<int> progress_once();
  sim::CoTask<void> dispatch(const ptl::Event& ev);
  sim::CoTask<void> handle_request(std::size_t idx, const ptl::Event& ev);
  sim::CoTask<int> send_am(int dst, std::uint64_t hdr, bool request,
                           std::span<const std::byte> payload);
  sim::CoTask<void> copy_out(std::uint64_t src, std::size_t n,
                             std::vector<std::byte>& out);
  std::uint64_t take_stage();

  host::Process& proc_;
  ptl::Api& api_;
  std::vector<ptl::ProcessId> peers_;
  int rank_;
  Config cfg_;
  bool inited_ = false;

  ptl::EqHandle eq_{};
  std::vector<Slot> slots_;

  // Segment.
  std::uint64_t seg_base_ = 0;
  ptl::CtHandle seg_ct_{};       // accel deposit counter (invalid: host)
  std::uint64_t seg_deposits_ = 0;  // host-counted deposits

  // AM state.
  std::vector<Handler> handlers_;
  std::vector<int> credit_;  // per-peer remaining request credits
  std::unordered_map<std::uint64_t, PendingReq> pending_;
  std::uint32_t next_token_ = 1;
  std::vector<std::uint64_t> stage_pool_;  // recycled AM send buffers

  // One-sided op state.
  std::unordered_map<std::uint64_t, Op> ops_;
  std::uint64_t next_op_ = 1;

  // Progress coordination (see header comment).
  bool eq_waiter_ = false;
  sim::WaitQueue wake_;

  Counters counters_;
  // Registry-backed mirrors (conduit.nN.*), cached at init.
  telemetry::Counter* m_am_short_ = nullptr;
  telemetry::Counter* m_am_medium_ = nullptr;
  telemetry::Counter* m_replies_ = nullptr;
  telemetry::Counter* m_puts_ = nullptr;
  telemetry::Counter* m_gets_ = nullptr;
  telemetry::Counter* m_stalled_ = nullptr;
};

}  // namespace xt::conduit
