#include "conduit/conduit.hpp"

#include <cassert>

#include "sim/strf.hpp"
#include "telemetry/metrics.hpp"

namespace xt::conduit {

using ptl::AckReq;
using ptl::Event;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;
using sim::Time;

namespace {

/// Match-bits layout: [63:48] context | [47:32] namespace | [31:16] src
/// rank | [15:0] kind (1 request, 2 reply, 0xFF segment).
constexpr std::uint64_t kCtx = 0x434Eull << 48;  // "CN"
constexpr std::uint64_t kKindRequest = 1;
constexpr std::uint64_t kKindReply = 2;
constexpr std::uint64_t kKindSegment = 0xFF;

/// AM hdr_data layout: [63:32] token | [31:24] handler | [23:0] immediate.
constexpr std::uint32_t kImmMask = 0xFFFFFFu;
/// Reply immediate for a request naming an empty handler slot.
constexpr std::uint32_t kImmBadHandler = 0xFFFFFFu;

/// user_ptr spaces: ops below kSlotBase, AM slots at kSlotBase + index,
/// the segment MD at kSegUp.
constexpr std::uint64_t kSlotBase = 1ull << 48;
constexpr std::uint64_t kSegUp = 2ull << 48;

/// Payloads at or below this count as "short" AMs in telemetry.
constexpr std::size_t kShortMax = 64;

}  // namespace

Conduit::Conduit(host::Process& proc, std::vector<ptl::ProcessId> peers,
                 int rank, Config cfg)
    : proc_(proc),
      api_(proc.api()),
      peers_(std::move(peers)),
      rank_(rank),
      cfg_(cfg),
      wake_(proc.node().engine()) {
  assert(rank_ >= 0 && rank_ < static_cast<int>(peers_.size()));
}

Conduit::~Conduit() = default;

std::uint64_t Conduit::am_bits(int src_rank, bool request) const {
  return kCtx | (static_cast<std::uint64_t>(cfg_.ns) << 32) |
         (static_cast<std::uint64_t>(src_rank & 0xFFFF) << 16) |
         (request ? kKindRequest : kKindReply);
}

std::uint64_t Conduit::seg_bits() const {
  return kCtx | (static_cast<std::uint64_t>(cfg_.ns) << 32) | kKindSegment;
}

CoTask<int> Conduit::init() {
  auto eq = co_await api_.PtlEQAlloc(cfg_.eq_depth);
  if (eq.rc != PTL_OK) co_return eq.rc;
  eq_ = eq.value;
  handlers_.resize(cfg_.handler_slots);
  credit_.assign(peers_.size(), cfg_.credits);

  const int rc = co_await setup_segment();
  if (rc != PTL_OK) co_return rc;

  // Pre-posted AM slots: `credits` request + `credits` reply buffers per
  // peer, each good for exactly one message.
  if (cfg_.credits > 0) {
    for (int p = 0; p < size(); ++p) {
      if (p == rank_) continue;
      for (int c = 0; c < cfg_.credits; ++c) {
        for (const bool request : {true, false}) {
          Slot s;
          s.buf = proc_.alloc(std::max<std::uint32_t>(cfg_.am_medium_max, 1));
          s.peer = p;
          s.request = request;
          slots_.push_back(s);
          const int src = co_await post_slot(slots_.size() - 1);
          if (src != PTL_OK) co_return src;
        }
      }
    }
  }

  auto& reg = proc_.node().engine().metrics();
  const std::string prefix = sim::strf("conduit.n%u.", proc_.nid());
  m_am_short_ = &reg.counter(prefix + "am_short");
  m_am_medium_ = &reg.counter(prefix + "am_medium");
  m_replies_ = &reg.counter(prefix + "replies");
  m_puts_ = &reg.counter(prefix + "puts");
  m_gets_ = &reg.counter(prefix + "gets");
  m_stalled_ = &reg.counter(prefix + "credits_stalled");
  inited_ = true;
  co_return PTL_OK;
}

CoTask<int> Conduit::setup_segment() {
  if (cfg_.segment_bytes == 0) co_return PTL_OK;
  seg_base_ = proc_.alloc(cfg_.segment_bytes);

  // Deposit counting: prefer a firmware counting event (zero host events
  // per remote put); PtlCTAlloc failing is the generic-bridge signal to
  // fall back to host-side kPutEnd counting.
  if (cfg_.count_deposits) {
    auto ct = co_await api_.PtlCTAlloc();
    if (ct.rc == PTL_OK) seg_ct_ = ct.value;
  }

  auto me = co_await api_.PtlMEAttach(
      kPtSeg, ProcessId{ptl::kNidAny, ptl::kPidAny}, seg_bits(), 0,
      Unlink::kRetain, InsPos::kAfter);
  if (me.rc != PTL_OK) co_return me.rc;
  MdDesc d;
  d.start = seg_base_;
  d.length = cfg_.segment_bytes;
  // MANAGE_REMOTE is what makes this a one-sided segment: the
  // *initiator's* offset addresses the deposit.  Without it the library
  // would stream deposits at its own advancing local offset and the
  // segment would fill after segment_bytes of traffic.
  d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_OP_GET |
              ptl::PTL_MD_MANAGE_REMOTE;
  d.threshold = ptl::PTL_MD_THRESH_INF;
  d.user_ptr = kSegUp;
  if (seg_ct_.valid()) {
    d.options |= ptl::PTL_MD_EVENT_CT_PUT;
    d.ct = seg_ct_;
    d.eq = ptl::kEqNone;
  } else if (cfg_.count_deposits) {
    d.eq = eq_;
  } else {
    d.eq = ptl::kEqNone;  // fully passive target (KV server segments)
  }
  auto md = co_await api_.PtlMDAttach(me.value, d, Unlink::kRetain);
  co_return md.rc;
}

CoTask<int> Conduit::post_slot(std::size_t idx) {
  const Slot& s = slots_[idx];
  auto me = co_await api_.PtlMEAttach(
      kPtAm, peers_[static_cast<std::size_t>(s.peer)],
      am_bits(s.peer, s.request), 0, Unlink::kUnlink, InsPos::kAfter);
  if (me.rc != PTL_OK) co_return me.rc;
  MdDesc d;
  d.start = s.buf;
  d.length = cfg_.am_medium_max;
  d.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_TRUNCATE;
  d.threshold = 1;
  d.eq = eq_;
  d.user_ptr = kSlotBase + idx;
  auto md = co_await api_.PtlMDAttach(me.value, d, Unlink::kUnlink);
  co_return md.rc;
}

std::uint64_t Conduit::take_stage() {
  if (!stage_pool_.empty()) {
    const std::uint64_t s = stage_pool_.back();
    stage_pool_.pop_back();
    return s;
  }
  // The simulated address space is a bump allocator with no free, so AM
  // staging buffers are pooled and recycled at SEND_END.
  return proc_.alloc(std::max<std::uint32_t>(cfg_.am_medium_max, 1));
}

CoTask<void> Conduit::copy_out(std::uint64_t src, std::size_t n,
                               std::vector<std::byte>& out) {
  out.resize(n);
  if (n > 0) {
    co_await proc_.node().cpu().run(
        Time::for_bytes(n, proc_.node().config().host_memcpy_rate));
    proc_.read_bytes(src, out);
  }
}

CoTask<int> Conduit::progress_once() {
  auto r = co_await api_.PtlEQGet(eq_);
  if (r.rc == ptl::PTL_EQ_EMPTY) {
    if (eq_waiter_) {
      // Someone else is parked on the event queue; park on the conduit
      // wakeup queue instead and recheck our predicate when anything
      // changes (every dispatch notifies).
      co_await wake_.wait();
      co_return 0;
    }
    ptl::EventQueue* q = api_.bridge().library().eq_object(eq_);
    if (q == nullptr) co_return ptl::PTL_EQ_INVALID;
    eq_waiter_ = true;
    co_await q->waiters().wait();
    eq_waiter_ = false;
    wake_.notify_all();  // new events: let every blocked caller retry
    co_return 0;
  }
  if (r.rc != PTL_OK && r.rc != ptl::PTL_EQ_DROPPED) co_return r.rc;
  co_await dispatch(r.value);
  wake_.notify_all();  // dispatch may have satisfied any waiter's predicate
  if (eq_waiter_) {
    // The designated EQ waiter parks on the *library's* waiter queue, which
    // only event arrival notifies — but this dispatch may have satisfied
    // its predicate too (returned its credit, resolved its token).  Kick it
    // so it re-checks; a spurious wakeup just re-parks.
    ptl::EventQueue* q = api_.bridge().library().eq_object(eq_);
    if (q != nullptr) q->waiters().notify_all();
  }
  co_return 1;
}

CoTask<void> Conduit::dispatch(const Event& ev) {
  // Segment deposits (host-counted mode).
  if (ev.user_ptr == kSegUp) {
    if (ev.type == EventType::kPutEnd && ev.ni_fail == ptl::PTL_NI_OK) {
      ++seg_deposits_;
    }
    co_return;
  }

  // AM slot events.
  if (ev.user_ptr >= kSlotBase) {
    const std::size_t idx = static_cast<std::size_t>(ev.user_ptr - kSlotBase);
    if (ev.type != EventType::kPutEnd) co_return;  // START / UNLINK
    const Slot slot = slots_[idx];
    if (slot.request) {
      co_await handle_request(idx, ev);
      co_return;
    }
    // Reply landed: copy it out, recycle the slot, return the credit and
    // resolve the requester's token.
    const std::uint64_t token = ev.hdr_data >> 32;
    const auto imm = static_cast<std::uint32_t>(ev.hdr_data & kImmMask);
    std::vector<std::byte> payload;
    co_await copy_out(slot.buf + ev.offset,
                      static_cast<std::size_t>(ev.mlength), payload);
    (void)co_await post_slot(idx);
    ++credit_[static_cast<std::size_t>(slot.peer)];
    auto it = pending_.find(token);
    if (it != pending_.end()) {
      if (it->second.reply != nullptr) {
        it->second.reply->imm = imm;
        it->second.reply->payload = std::move(payload);
      }
      it->second.done = true;
    }
    co_return;
  }

  // One-sided / AM-send op events.
  auto it = ops_.find(ev.user_ptr);
  if (it == ops_.end()) co_return;
  Op& op = it->second;
  switch (ev.type) {
    case EventType::kSendEnd:
      if (op.kind == Op::Kind::kAmSend) {
        stage_pool_.push_back(op.stage);
        ops_.erase(it);
      } else if (op.kind == Op::Kind::kPut) {
        if (op.local != nullptr) --op.local->pending;
        if (op.remote == nullptr) ops_.erase(it);  // no ack coming
      }
      break;
    case EventType::kAck:
      if (op.kind == Op::Kind::kPut) {
        if (op.remote != nullptr) --op.remote->pending;
        ops_.erase(it);
      }
      break;
    case EventType::kReplyEnd:
      if (op.kind == Op::Kind::kGet) {
        if (op.local != nullptr) --op.local->pending;
        ops_.erase(it);
      }
      break;
    default:
      break;  // START events: nothing to do
  }
}

CoTask<void> Conduit::handle_request(std::size_t idx, const Event& ev) {
  const Slot slot = slots_[idx];
  AmArgs args;
  args.src = slot.peer;
  args.token = ev.hdr_data >> 32;
  args.handler = static_cast<std::uint8_t>((ev.hdr_data >> 24) & 0xFF);
  args.imm = static_cast<std::uint32_t>(ev.hdr_data & kImmMask);
  co_await copy_out(slot.buf + ev.offset,
                    static_cast<std::size_t>(ev.mlength), args.payload);
  // Repost after the copy but before the handler or reply: the peer can
  // only reuse this credit once the reply lands, so its window can never
  // outrun the pre-posted slots.
  (void)co_await post_slot(idx);
  if (args.handler >= handlers_.size() || !handlers_[args.handler]) {
    (void)co_await am_reply(args, {}, kImmBadHandler);
    co_return;
  }
  co_await handlers_[args.handler](*this, args);
  if (!args.replied) {
    (void)co_await am_reply(args, {});  // implicit: always resolve the token
  }
}

CoTask<int> Conduit::send_am(int dst, std::uint64_t hdr, bool request,
                             std::span<const std::byte> payload) {
  const std::uint64_t stage = take_stage();
  if (!payload.empty()) {
    co_await proc_.node().cpu().run(Time::for_bytes(
        payload.size(), proc_.node().config().host_memcpy_rate));
    proc_.write_bytes(stage, payload);
  }
  const std::uint64_t id = next_op_++;
  Op op;
  op.kind = Op::Kind::kAmSend;
  op.stage = stage;
  ops_.emplace(id, op);
  MdDesc d;
  d.start = stage;
  d.length = static_cast<std::uint32_t>(payload.size());
  d.threshold = 1;
  d.eq = eq_;
  d.user_ptr = id;
  auto md = co_await api_.PtlMDBind(d, Unlink::kUnlink);
  if (md.rc != PTL_OK) {
    ops_.erase(id);
    stage_pool_.push_back(stage);
    co_return md.rc;
  }
  co_return co_await api_.PtlPut(md.value, AckReq::kNone,
                                 peers_[static_cast<std::size_t>(dst)], kPtAm,
                                 0, am_bits(rank_, request), 0, hdr);
}

int Conduit::set_handler(std::size_t slot, Handler h) {
  if (slot >= handlers_.size()) return ptl::PTL_FAIL;
  handlers_[slot] = std::move(h);
  return PTL_OK;
}

CoTask<int> Conduit::am_request(int dst, std::uint8_t handler,
                                std::span<const std::byte> payload,
                                std::uint32_t imm, AmReply* reply) {
  assert(inited_);
  if (dst < 0 || dst >= size() || dst == rank_) co_return ptl::PTL_FAIL;
  if (cfg_.credits <= 0) co_return ptl::PTL_FAIL;
  if (payload.size() > cfg_.am_medium_max) co_return ptl::PTL_SEGV;

  auto& credit = credit_[static_cast<std::size_t>(dst)];
  if (credit <= 0) {
    ++counters_.credits_stalled;
    if (m_stalled_ != nullptr) m_stalled_->add();
    while (credit <= 0) (void)co_await progress_once();
  }
  --credit;

  if (payload.size() <= kShortMax) {
    ++counters_.am_short;
    if (m_am_short_ != nullptr) m_am_short_->add();
  } else {
    ++counters_.am_medium;
    if (m_am_medium_ != nullptr) m_am_medium_->add();
  }

  const std::uint64_t token = next_token_++;
  auto& pr = pending_[token];  // reference stays valid across rehash
  pr.done = false;
  pr.reply = reply;
  const std::uint64_t hdr = (token << 32) |
                            (static_cast<std::uint64_t>(handler) << 24) |
                            (imm & kImmMask);
  const int rc = co_await send_am(dst, hdr, /*request=*/true, payload);
  if (rc != PTL_OK) {
    pending_.erase(token);
    ++credit;
    co_return rc;
  }
  while (!pr.done) (void)co_await progress_once();
  pending_.erase(token);
  co_return PTL_OK;
}

CoTask<int> Conduit::am_reply(AmArgs& req, std::span<const std::byte> payload,
                              std::uint32_t imm) {
  if (req.replied) co_return ptl::PTL_FAIL;
  if (payload.size() > cfg_.am_medium_max) co_return ptl::PTL_SEGV;
  req.replied = true;
  ++counters_.replies;
  if (m_replies_ != nullptr) m_replies_->add();
  const std::uint64_t hdr = (req.token << 32) | (imm & kImmMask);
  co_return co_await send_am(req.src, hdr, /*request=*/false, payload);
}

CoTask<int> Conduit::put(int dst, std::uint64_t laddr, std::uint32_t len,
                         std::uint64_t roff, Completion* local,
                         Completion* remote) {
  assert(inited_);
  if (dst < 0 || dst >= size()) co_return ptl::PTL_FAIL;
  // Overflow-safe segment range check (mirrors AddressSpace::valid): never
  // compute roff + len.
  const std::uint32_t seg = cfg_.peer_segment_bytes != 0
                                ? cfg_.peer_segment_bytes
                                : cfg_.segment_bytes;
  if (len > seg || roff > seg - len) co_return ptl::PTL_SEGV;
  const std::uint64_t id = next_op_++;
  Op op;
  op.kind = Op::Kind::kPut;
  op.local = local;
  op.remote = remote;
  if (local != nullptr) ++local->pending;
  if (remote != nullptr) ++remote->pending;
  ops_.emplace(id, op);
  MdDesc d;
  d.start = laddr;
  d.length = len;
  d.threshold = 1;
  d.eq = eq_;
  d.user_ptr = id;
  auto md = co_await api_.PtlMDBind(d, Unlink::kUnlink);
  if (md.rc != PTL_OK) {
    if (local != nullptr) --local->pending;
    if (remote != nullptr) --remote->pending;
    ops_.erase(id);
    co_return md.rc;
  }
  ++counters_.puts;
  if (m_puts_ != nullptr) m_puts_->add();
  co_return co_await api_.PtlPut(
      md.value, remote != nullptr ? AckReq::kAck : AckReq::kNone,
      peers_[static_cast<std::size_t>(dst)], kPtSeg, 0, seg_bits(), roff, 0);
}

CoTask<int> Conduit::get(int dst, std::uint64_t laddr, std::uint32_t len,
                         std::uint64_t roff, Completion* done) {
  assert(inited_);
  if (dst < 0 || dst >= size()) co_return ptl::PTL_FAIL;
  const std::uint32_t seg = cfg_.peer_segment_bytes != 0
                                ? cfg_.peer_segment_bytes
                                : cfg_.segment_bytes;
  if (len > seg || roff > seg - len) co_return ptl::PTL_SEGV;
  const std::uint64_t id = next_op_++;
  Op op;
  op.kind = Op::Kind::kGet;
  op.local = done;
  if (done != nullptr) ++done->pending;
  ops_.emplace(id, op);
  MdDesc d;
  d.start = laddr;
  d.length = len;
  d.options = ptl::PTL_MD_OP_GET;
  d.threshold = 1;
  d.eq = eq_;
  d.user_ptr = id;
  auto md = co_await api_.PtlMDBind(d, Unlink::kUnlink);
  if (md.rc != PTL_OK) {
    if (done != nullptr) --done->pending;
    ops_.erase(id);
    co_return md.rc;
  }
  ++counters_.gets;
  if (m_gets_ != nullptr) m_gets_->add();
  co_return co_await api_.PtlGet(md.value,
                                 peers_[static_cast<std::size_t>(dst)], kPtSeg,
                                 0, seg_bits(), roff);
}

CoTask<int> Conduit::wait(Completion& c) {
  while (c.pending > 0) {
    const int rc = co_await progress_once();
    if (rc < 0) co_return rc;
  }
  co_return PTL_OK;
}

CoTask<int> Conduit::wait_deposits(std::uint64_t threshold) {
  if (seg_ct_.valid()) {
    auto r = co_await api_.PtlCTWait(seg_ct_, threshold);
    co_return r.rc;
  }
  if (!cfg_.count_deposits) co_return ptl::PTL_FAIL;
  while (seg_deposits_ < threshold) {
    const int rc = co_await progress_once();
    if (rc < 0) co_return rc;
  }
  co_return PTL_OK;
}

}  // namespace xt::conduit
