#include "conduit/selftest.hpp"

#include <cstddef>
#include <memory>
#include <span>

#include "conduit/conduit.hpp"
#include "host/live_cluster.hpp"
#include "host/node.hpp"
#include "sim/strf.hpp"
#include "sim/task.hpp"

namespace xt::conduit {

namespace {

using sim::CoTask;

constexpr ptl::Pid kPid = 21;
constexpr std::uint32_t kBlk = 256;   // bytes per segment block
constexpr std::uint32_t kAmBytes = 96;
constexpr std::size_t kHandler = 3;

constexpr std::uint64_t kFnvInit = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv(std::uint64_t& h, std::span<const std::byte> bytes) {
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
}

/// Block byte i of the block rank `src` writes into rank `dst`'s segment.
std::byte blk_byte(int src, int dst, std::uint32_t i, std::uint64_t seed) {
  return static_cast<std::byte>(
      (static_cast<std::uint64_t>(src) * 131 +
       static_cast<std::uint64_t>(dst) * 29 + i * 7 + seed * 13 + 5) &
      0xFF);
}

/// AM request payload byte i from rank `src`; the handler replies each
/// byte incremented by one.
std::byte am_byte(int src, std::uint32_t i, std::uint64_t seed) {
  return static_cast<std::byte>(
      (static_cast<std::uint64_t>(src) * 17 + i * 3 + seed + 1) & 0xFF);
}

std::uint32_t reply_imm(int src) {
  return static_cast<std::uint32_t>(src * 7 + 9) & 0xFFFFFF;
}

Config xval_config(int ranks) {
  Config cfg;
  cfg.segment_bytes = static_cast<std::uint32_t>(ranks) * kBlk;
  cfg.credits = 2;
  cfg.count_deposits = true;
  cfg.eq_depth = 4096;
  return cfg;
}

/// The whole per-rank exercise; folds verified bytes into `sum` and sets
/// `ok_out` to 1 only when every comparison passed.
CoTask<void> rank_script(Conduit& c, int n, std::uint64_t seed,
                         std::uint64_t& sum, std::uint8_t& ok_out) {
  host::Process& proc = c.process();
  const int r = c.rank();
  bool ok = true;
  std::uint64_t h = kFnvInit;
  std::vector<std::byte> blk(kBlk);

  // The ring AM that will arrive later can only be sent after this rank's
  // puts have landed at its sender, so registering the handler before the
  // first put is early enough.
  Completion served;
  served.pending = 1;
  c.set_handler(kHandler, [&](Conduit& cc, AmArgs& a) -> CoTask<void> {
    std::vector<std::byte> rep(a.payload.size());
    for (std::size_t i = 0; i < rep.size(); ++i) {
      rep[i] = static_cast<std::byte>(
          (static_cast<unsigned>(a.payload[i]) + 1) & 0xFF);
    }
    co_await cc.am_reply(a, rep, reply_imm(a.src));
    if (served.pending > 0) --served.pending;
  });

  // Seed the self-block peers will get.
  for (std::uint32_t i = 0; i < kBlk; ++i) blk[i] = blk_byte(r, r, i, seed);
  proc.write_bytes(c.segment_base() + static_cast<std::uint64_t>(r) * kBlk,
                   blk);

  // 1. Put a distinct block into every peer's segment (remote completion
  //    = ack, so the deposit is durable before the next reuse of the
  //    staging buffer).
  const std::uint64_t sbuf = proc.alloc(kBlk);
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    for (std::uint32_t i = 0; i < kBlk; ++i) blk[i] = blk_byte(r, p, i, seed);
    proc.write_bytes(sbuf, blk);
    Completion remote;
    if (co_await c.put(p, sbuf, kBlk, static_cast<std::uint64_t>(r) * kBlk,
                       nullptr, &remote) != ptl::PTL_OK ||
        co_await c.wait(remote) != ptl::PTL_OK) {
      co_return;
    }
  }

  // 2. Every peer deposited one block; verify them in rank order.
  if (co_await c.wait_deposits(static_cast<std::uint64_t>(n - 1)) !=
      ptl::PTL_OK) {
    co_return;
  }
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    proc.read_bytes(c.segment_base() + static_cast<std::uint64_t>(p) * kBlk,
                    blk);
    for (std::uint32_t i = 0; i < kBlk; ++i) {
      if (blk[i] != blk_byte(p, r, i, seed)) ok = false;
    }
    fnv(h, blk);
  }

  // 3. Get round trips: the peer's self-block, then this rank's own
  //    earlier deposit read back through remote memory.
  const std::uint64_t gbuf = proc.alloc(kBlk);
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    const std::uint64_t offs[2] = {static_cast<std::uint64_t>(p) * kBlk,
                                   static_cast<std::uint64_t>(r) * kBlk};
    const int srcs[2] = {p, r};
    for (int g = 0; g < 2; ++g) {
      Completion done;
      if (co_await c.get(p, gbuf, kBlk, offs[g], &done) != ptl::PTL_OK ||
          co_await c.wait(done) != ptl::PTL_OK) {
        co_return;
      }
      proc.read_bytes(gbuf, blk);
      for (std::uint32_t i = 0; i < kBlk; ++i) {
        if (blk[i] != blk_byte(srcs[g], p, i, seed)) ok = false;
      }
      fnv(h, blk);
    }
  }

  // 4. One AM around the ring; verify the transformed reply, then pump
  //    until this rank's own incoming request has been served.
  std::vector<std::byte> am(kAmBytes);
  for (std::uint32_t i = 0; i < kAmBytes; ++i) am[i] = am_byte(r, i, seed);
  AmReply rep;
  if (co_await c.am_request((r + 1) % n, kHandler, am,
                            static_cast<std::uint32_t>(r), &rep) !=
      ptl::PTL_OK) {
    co_return;
  }
  if (rep.imm != reply_imm(r) || rep.payload.size() != kAmBytes) ok = false;
  for (std::uint32_t i = 0; i < rep.payload.size() && i < kAmBytes; ++i) {
    if (rep.payload[i] !=
        static_cast<std::byte>((static_cast<unsigned>(am_byte(r, i, seed)) +
                                1) & 0xFF)) {
      ok = false;
    }
  }
  fnv(h, rep.payload);
  if (co_await c.wait(served) != ptl::PTL_OK) co_return;

  sum = h;
  ok_out = ok ? 1 : 0;
}

CoTask<void> init_one(Conduit& c, std::uint8_t& ok) {
  ok = (co_await c.init()) == ptl::PTL_OK ? 1 : 0;
}

}  // namespace

std::vector<std::uint64_t> xval_expect(int ranks, std::uint64_t seed) {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(ranks));
  std::vector<std::byte> blk(kBlk);
  for (int r = 0; r < ranks; ++r) {
    std::uint64_t h = kFnvInit;
    for (int p = 0; p < ranks; ++p) {
      if (p == r) continue;
      for (std::uint32_t i = 0; i < kBlk; ++i) blk[i] = blk_byte(p, r, i, seed);
      fnv(h, blk);
    }
    for (int p = 0; p < ranks; ++p) {
      if (p == r) continue;
      for (std::uint32_t i = 0; i < kBlk; ++i) blk[i] = blk_byte(p, p, i, seed);
      fnv(h, blk);
      for (std::uint32_t i = 0; i < kBlk; ++i) blk[i] = blk_byte(r, p, i, seed);
      fnv(h, blk);
    }
    std::vector<std::byte> rep(kAmBytes);
    for (std::uint32_t i = 0; i < kAmBytes; ++i) {
      rep[i] = static_cast<std::byte>(
          (static_cast<unsigned>(am_byte(r, i, seed)) + 1) & 0xFF);
    }
    fnv(h, rep);
    out[static_cast<std::size_t>(r)] = h;
  }
  return out;
}

XvalResult xval_sim(int ranks, std::uint64_t seed) {
  XvalResult res;
  res.sum.resize(static_cast<std::size_t>(ranks), 0);
  host::Machine m(net::Shape::xt3(ranks, 1, 1));

  std::vector<host::Process*> procs;
  std::vector<ptl::ProcessId> ids;
  for (int r = 0; r < ranks; ++r) {
    procs.push_back(&m.node(static_cast<net::NodeId>(r)).spawn_process(kPid));
    ids.push_back(procs.back()->id());
  }
  std::vector<std::unique_ptr<Conduit>> cs;
  std::vector<std::uint8_t> inited(static_cast<std::size_t>(ranks), 0);
  for (int r = 0; r < ranks; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    cs.push_back(std::make_unique<Conduit>(*procs[u], ids, r,
                                           xval_config(ranks)));
    sim::spawn(init_one(*cs.back(), inited[u]));
  }
  m.run();
  for (const std::uint8_t i : inited) {
    if (i == 0) {
      res.failure = "conduit init failed";
      return res;
    }
  }

  std::vector<std::uint8_t> oks(static_cast<std::size_t>(ranks), 0);
  for (int r = 0; r < ranks; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    sim::spawn(rank_script(*cs[u], ranks, seed, res.sum[u], oks[u]));
  }
  m.run();

  res.ok = m.first_panic().empty();
  if (!res.ok) res.failure = m.first_panic();
  for (std::size_t u = 0; u < oks.size(); ++u) {
    if (oks[u] == 0) {
      res.ok = false;
      if (res.failure.empty()) {
        res.failure = sim::strf("rank %zu verification failed", u);
      }
    }
  }
  return res;
}

XvalResult xval_live(int ranks, std::uint64_t seed) {
  XvalResult res;
  res.sum.resize(static_cast<std::size_t>(ranks), 0);
  std::vector<std::uint8_t> oks(static_cast<std::size_t>(ranks), 0);

  host::LiveOptions opts;
  opts.ranks = ranks;
  host::LiveApp app = [&](host::LiveRank& lr) -> CoTask<void> {
    const std::size_t u = static_cast<std::size_t>(lr.rank());
    std::vector<ptl::ProcessId> ids;
    for (int r = 0; r < ranks; ++r) ids.push_back(lr.peer(r));
    Conduit c(lr.process(), ids, lr.rank(), xval_config(ranks));
    const bool ok = (co_await c.init()) == ptl::PTL_OK;
    co_await lr.barrier();  // always reached, or peers would hang here
    if (ok) co_await rank_script(c, ranks, seed, res.sum[u], oks[u]);
    // Keep the fabric up until every rank's traffic has fully landed.
    co_await lr.barrier();
  };
  const auto rr = host::run_live_cluster(opts, app);

  res.ok = true;
  for (std::size_t u = 0; u < rr.size(); ++u) {
    if (!rr[u].ok()) {
      res.ok = false;
      if (res.failure.empty()) {
        res.failure = sim::strf("rank %zu failed: %s%s", u,
                                rr[u].panic.c_str(), rr[u].error.c_str());
      }
    }
  }
  for (std::size_t u = 0; u < oks.size(); ++u) {
    if (oks[u] == 0) {
      res.ok = false;
      if (res.failure.empty()) {
        res.failure = sim::strf("rank %zu verification failed", u);
      }
    }
  }
  return res;
}

}  // namespace xt::conduit
