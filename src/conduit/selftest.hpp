#pragma once

// Conduit cross-validation script (bench/xval + transport conformance).
//
// Every rank runs the same deterministic exercise of the conduit's three
// surfaces — put, get, active message — and folds every byte it verified
// into an FNV-1a checksum:
//
//   1. each rank seeds its own segment block, then puts a distinct
//      (src, dst)-stamped block into every peer's segment (remote
//      completion = Portals ack);
//   2. waits for all n-1 peer deposits, verifies them byte-for-byte;
//   3. gets back both the peer's self-block and its own earlier deposit
//      (a full put/get round trip through remote memory);
//   4. sends one AM around the ring and verifies the handler's
//      transformed reply, pumping until its own incoming request has
//      been served.
//
// The script's data is a pure function of (seed, rank count), so the
// per-rank checksums must be byte-identical across backends: run it over
// the simulated SeaStar fabric and over live UDP loopback and compare.

#include <cstdint>
#include <string>
#include <vector>

namespace xt::conduit {

struct XvalResult {
  /// Per-rank FNV-1a checksum over every verified byte, in verification
  /// order.  Equal across backends iff the transfers were byte-identical.
  std::vector<std::uint64_t> sum;
  bool ok = false;
  std::string failure;
};

/// Expected checksums, computed locally without any communication.
std::vector<std::uint64_t> xval_expect(int ranks, std::uint64_t seed);

/// Runs the script over the simulated fabric (one Machine, one process
/// per node).
XvalResult xval_sim(int ranks, std::uint64_t seed);

/// Runs the script over live UDP loopback (one real thread per rank).
XvalResult xval_live(int ranks, std::uint64_t seed);

}  // namespace xt::conduit
