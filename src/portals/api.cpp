#include "portals/api.hpp"

#include "portals/triggered.hpp"

namespace xt::ptl {

sim::CoTask<Res<int>> Api::PtlInit() {
  co_await b_.call([](Library&) { return PTL_OK; }, call_cost_);
  co_return Res<int>{PTL_OK, 1};
}

sim::CoTask<int> Api::PtlFini() {
  co_return co_await b_.call([](Library&) { return PTL_OK; }, call_cost_);
}

sim::CoTask<Res<Limits>> Api::PtlNIInit(const Limits& desired) {
  Res<Limits> r;
  r.rc = co_await b_.call(
      [&r, desired](Library& lib) {
        return lib.ni_init(desired, &r.value);
      },
      call_cost_);
  co_return r;
}

sim::CoTask<int> Api::PtlNIFini() {
  co_return co_await b_.call([](Library& lib) { return lib.ni_fini(); },
                             call_cost_);
}

sim::CoTask<Res<ProcessId>> Api::PtlGetId() {
  Res<ProcessId> r;
  r.rc = co_await b_.call(
      [&r](Library& lib) {
        r.value = lib.id();
        return PTL_OK;
      },
      call_cost_);
  co_return r;
}

sim::CoTask<Res<std::uint64_t>> Api::PtlNIStatus(SrIndex sr) {
  Res<std::uint64_t> r;
  r.rc = co_await b_.call(
      [&r, sr](Library& lib) {
        r.value = lib.status(sr);
        return PTL_OK;
      },
      call_cost_);
  co_return r;
}

sim::CoTask<Res<std::uint32_t>> Api::PtlNIDist(std::uint32_t nid) {
  Res<std::uint32_t> r;
  r.rc = co_await b_.call(
      [&r, nid](Library& lib) {
        const int d = lib.ni_dist(nid);
        if (d < 0) return PTL_PROCESS_INVALID;
        r.value = static_cast<std::uint32_t>(d);
        return PTL_OK;
      },
      call_cost_);
  co_return r;
}

sim::CoTask<Res<MeHandle>> Api::PtlMEAttach(std::uint32_t pt_index,
                                            ProcessId match_id,
                                            MatchBits mbits, MatchBits ibits,
                                            Unlink unlink, InsPos pos) {
  Res<MeHandle> r;
  r.rc = co_await b_.call(
      [&, pt_index, match_id, mbits, ibits, unlink, pos](Library& lib) {
        return lib.me_attach(pt_index, match_id, mbits, ibits, unlink, pos,
                             &r.value);
      },
      call_cost_);
  co_return r;
}

sim::CoTask<Res<MeHandle>> Api::PtlMEInsert(MeHandle base, ProcessId match_id,
                                            MatchBits mbits, MatchBits ibits,
                                            Unlink unlink, InsPos pos) {
  Res<MeHandle> r;
  r.rc = co_await b_.call(
      [&, base, match_id, mbits, ibits, unlink, pos](Library& lib) {
        return lib.me_insert(base, match_id, mbits, ibits, unlink, pos,
                             &r.value);
      },
      call_cost_);
  co_return r;
}

sim::CoTask<int> Api::PtlMEUnlink(MeHandle me) {
  co_return co_await b_.call(
      [me](Library& lib) { return lib.me_unlink(me); }, call_cost_);
}

sim::CoTask<Res<MdHandle>> Api::PtlMDAttach(MeHandle me, MdDesc md,
                                            Unlink unlink_op) {
  Res<MdHandle> r;
  // NOTE: capture by reference only — md contains a std::vector and GCC 12
  // double-destroys non-trivial by-value lambda captures inside co_await
  // expressions (the parameters outlive the awaited call).
  r.rc = co_await b_.call(
      [&](Library& lib) { return lib.md_attach(me, md, unlink_op, &r.value); },
      call_cost_);
  co_return r;
}

sim::CoTask<Res<MdHandle>> Api::PtlMDBind(MdDesc md, Unlink unlink_op) {
  Res<MdHandle> r;
  r.rc = co_await b_.call(
      [&](Library& lib) { return lib.md_bind(md, unlink_op, &r.value); },
      call_cost_);
  co_return r;
}

sim::CoTask<int> Api::PtlMDUnlink(MdHandle md) {
  co_return co_await b_.call(
      [md](Library& lib) { return lib.md_unlink(md); }, call_cost_);
}

sim::CoTask<Res<MdDesc>> Api::PtlMDUpdate(MdHandle md, const MdDesc* new_md,
                                          EqHandle test_eq) {
  Res<MdDesc> r;
  r.rc = co_await b_.call(
      [&](Library& lib) {
        return lib.md_update(md, &r.value, new_md, test_eq);
      },
      call_cost_);
  co_return r;
}

sim::CoTask<Res<EqHandle>> Api::PtlEQAlloc(std::size_t count) {
  Res<EqHandle> r;
  r.rc = co_await b_.call(
      [&, count](Library& lib) { return lib.eq_alloc(count, &r.value); },
      call_cost_);
  co_return r;
}

sim::CoTask<int> Api::PtlEQFree(EqHandle eq) {
  co_return co_await b_.call(
      [eq](Library& lib) { return lib.eq_free(eq); }, call_cost_);
}

sim::CoTask<Res<Event>> Api::PtlEQGet(EqHandle eq) {
  Res<Event> r;
  r.rc = co_await b_.call(
      [&, eq](Library& lib) { return lib.eq_get(eq, &r.value); }, call_cost_);
  co_return r;
}

sim::CoTask<Res<Event>> Api::PtlEQWait(EqHandle eq) {
  for (;;) {
    Res<Event> r = co_await PtlEQGet(eq);
    if (r.rc != PTL_EQ_EMPTY) co_return r;
    EventQueue* q = b_.library().eq_object(eq);
    if (q == nullptr) co_return Res<Event>{PTL_EQ_INVALID, {}};
    co_await q->waiters().wait();
  }
}

sim::CoTask<Res<Event>> Api::PtlEQPoll(std::span<const EqHandle> eqs,
                                       sim::Time timeout,
                                       std::size_t* which) {
  const sim::Time deadline = timeout == sim::Time::max()
                                 ? sim::Time::max()
                                 : b_.engine().now() + timeout;
  // The real PtlEQPoll spins across its EQs; poll at trap granularity.
  for (;;) {
    for (std::size_t i = 0; i < eqs.size(); ++i) {
      Res<Event> r = co_await PtlEQGet(eqs[i]);
      if (r.rc != PTL_EQ_EMPTY) {
        if (which != nullptr) *which = i;
        co_return r;
      }
    }
    if (deadline != sim::Time::max() && b_.engine().now() >= deadline) {
      co_return Res<Event>{PTL_EQ_EMPTY, {}};
    }
    co_await sim::delay(b_.engine(), sim::Time::ns(200));
  }
}

sim::CoTask<int> Api::PtlACEntry(std::uint32_t ac_index, ProcessId match_id,
                                 std::uint32_t pt_index) {
  co_return co_await b_.call(
      [ac_index, match_id, pt_index](Library& lib) {
        return lib.ac_entry(ac_index, match_id, pt_index);
      },
      call_cost_);
}

sim::CoTask<int> Api::PtlPut(MdHandle md, AckReq ack, ProcessId target,
                             std::uint32_t pt_index, std::uint32_t ac_index,
                             MatchBits mbits, std::uint64_t remote_offset,
                             std::uint64_t hdr_data) {
  co_return co_await b_.call(
      [=](Library& lib) {
        return lib.put(md, ack, target, pt_index, ac_index, mbits,
                       remote_offset, hdr_data);
      },
      data_cost_);
}

sim::CoTask<int> Api::PtlPutRegion(MdHandle md, std::uint64_t offset,
                                   std::uint32_t len, AckReq ack,
                                   ProcessId target, std::uint32_t pt_index,
                                   std::uint32_t ac_index, MatchBits mbits,
                                   std::uint64_t remote_offset,
                                   std::uint64_t hdr_data) {
  co_return co_await b_.call(
      [=](Library& lib) {
        return lib.put_region(md, offset, len, ack, target, pt_index,
                              ac_index, mbits, remote_offset, hdr_data);
      },
      data_cost_);
}

sim::CoTask<int> Api::PtlGet(MdHandle md, ProcessId target,
                             std::uint32_t pt_index, std::uint32_t ac_index,
                             MatchBits mbits, std::uint64_t remote_offset) {
  co_return co_await b_.call(
      [=](Library& lib) {
        return lib.get(md, target, pt_index, ac_index, mbits, remote_offset);
      },
      data_cost_);
}

sim::CoTask<int> Api::PtlGetRegion(MdHandle md, std::uint64_t offset,
                                   std::uint32_t len, ProcessId target,
                                   std::uint32_t pt_index,
                                   std::uint32_t ac_index, MatchBits mbits,
                                   std::uint64_t remote_offset) {
  co_return co_await b_.call(
      [=](Library& lib) {
        return lib.get_region(md, offset, len, target, pt_index, ac_index,
                              mbits, remote_offset);
      },
      data_cost_);
}

sim::CoTask<int> Api::PtlAtomicSum(MdHandle md, AckReq ack, ProcessId target,
                                   std::uint32_t pt_index,
                                   std::uint32_t ac_index, MatchBits mbits,
                                   std::uint64_t remote_offset,
                                   std::uint64_t hdr_data) {
  co_return co_await b_.call(
      [=](Library& lib) {
        return lib.put_atomic(md, ack, target, pt_index, ac_index, mbits,
                              remote_offset, hdr_data);
      },
      data_cost_);
}

sim::CoTask<int> Api::PtlAtomicSumRegion(
    MdHandle md, std::uint64_t offset, std::uint32_t len, AckReq ack,
    ProcessId target, std::uint32_t pt_index, std::uint32_t ac_index,
    MatchBits mbits, std::uint64_t remote_offset, std::uint64_t hdr_data) {
  co_return co_await b_.call(
      [=](Library& lib) {
        return lib.put_atomic_region(md, offset, len, ack, target, pt_index,
                                     ac_index, mbits, remote_offset,
                                     hdr_data);
      },
      data_cost_);
}

// ---------------------- counting events + triggered ops (accel only) ----
// Each call still goes through Bridge::call so the library-entry cost (and
// the event-queue poll that comes with entering the user-level library) is
// charged; the TriggeredOps work itself runs against NIC SRAM.

sim::CoTask<Res<CtHandle>> Api::PtlCTAlloc() {
  Res<CtHandle> r;
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return Res<CtHandle>{PTL_NI_INVALID, {}};
  r.rc = co_await b_.call([&](Library&) { return t->ct_alloc(&r.value); },
                          call_cost_);
  co_return r;
}

sim::CoTask<int> Api::PtlCTFree(CtHandle ct) {
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return PTL_NI_INVALID;
  co_return co_await b_.call([&](Library&) { return t->ct_free(ct); },
                             call_cost_);
}

sim::CoTask<Res<std::uint64_t>> Api::PtlCTGet(CtHandle ct) {
  Res<std::uint64_t> r;
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return Res<std::uint64_t>{PTL_NI_INVALID, 0};
  r.rc = co_await b_.call([&](Library&) { return t->ct_get(ct, &r.value); },
                          call_cost_);
  co_return r;
}

sim::CoTask<int> Api::PtlCTSet(CtHandle ct, std::uint64_t value) {
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return PTL_NI_INVALID;
  co_return co_await b_.call([&](Library&) { return t->ct_set(ct, value); },
                             call_cost_);
}

sim::CoTask<int> Api::PtlCTInc(CtHandle ct, std::uint64_t inc) {
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return PTL_NI_INVALID;
  co_return co_await b_.call([&](Library&) { return t->ct_inc(ct, inc); },
                             call_cost_);
}

sim::CoTask<Res<std::uint64_t>> Api::PtlCTWait(CtHandle ct,
                                               std::uint64_t threshold) {
  Res<std::uint64_t> r;
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return Res<std::uint64_t>{PTL_NI_INVALID, 0};
  co_await b_.call([](Library&) { return PTL_OK; }, call_cost_);
  r.rc = co_await t->ct_wait(ct, threshold, &r.value);
  co_return r;
}

sim::CoTask<int> Api::PtlTriggeredPut(MdHandle md, std::uint64_t offset,
                                      std::uint32_t len, ProcessId target,
                                      std::uint32_t pt_index,
                                      std::uint32_t ac_index, MatchBits mbits,
                                      std::uint64_t remote_offset,
                                      std::uint64_t hdr_data, CtHandle trig_ct,
                                      std::uint64_t threshold) {
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return PTL_NI_INVALID;
  co_return co_await b_.call(
      [&](Library&) {
        return t->triggered_put(md, offset, len, target, pt_index, ac_index,
                                mbits, remote_offset, hdr_data,
                                /*atomic=*/false, trig_ct, threshold);
      },
      data_cost_);
}

sim::CoTask<int> Api::PtlTriggeredAtomicSum(
    MdHandle md, std::uint64_t offset, std::uint32_t len, ProcessId target,
    std::uint32_t pt_index, std::uint32_t ac_index, MatchBits mbits,
    std::uint64_t remote_offset, std::uint64_t hdr_data, CtHandle trig_ct,
    std::uint64_t threshold) {
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return PTL_NI_INVALID;
  co_return co_await b_.call(
      [&](Library&) {
        return t->triggered_put(md, offset, len, target, pt_index, ac_index,
                                mbits, remote_offset, hdr_data,
                                /*atomic=*/true, trig_ct, threshold);
      },
      data_cost_);
}

sim::CoTask<int> Api::PtlTriggeredCTInc(CtHandle trig_ct,
                                        std::uint64_t threshold,
                                        CtHandle target_ct,
                                        std::uint64_t inc) {
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return PTL_NI_INVALID;
  co_return co_await b_.call(
      [&](Library&) {
        return t->triggered_ct_inc(trig_ct, threshold, target_ct, inc);
      },
      call_cost_);
}

sim::CoTask<int> Api::PtlCTRearm() {
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return PTL_NI_INVALID;
  co_return co_await b_.call([&](Library&) { return t->rearm_triggers(); },
                             call_cost_);
}

sim::CoTask<int> Api::PtlCTResetTriggers() {
  TriggeredOps* t = b_.triggered();
  if (t == nullptr) co_return PTL_NI_INVALID;
  co_return co_await b_.call([&](Library&) { return t->reset_triggers(); },
                             call_cost_);
}

}  // namespace xt::ptl
