#pragma once

// The Cray "bridge" layer (§3.2).
//
// API calls from a process must reach the Portals library, which may live
// in another protection domain (the kernel, in generic mode).  A Bridge
// abstracts that crossing: qkbridge (Catamount trap), ukbridge (Linux
// syscall), kbridge (kernel client, no crossing), and the accelerated-mode
// bridge (user-space library, no crossing and no kernel at all).
//
// `call` runs a closure against the library in its home domain, charging
// the crossing and CPU costs; this is the "override the methods for moving
// data to and from API and library-space" role the paper describes.

#include <functional>

#include "portals/library.hpp"
#include "sim/task.hpp"

namespace xt::ptl {

class TriggeredOps;

class Bridge {
 public:
  virtual ~Bridge() = default;

  /// Executes `fn(library)` in the library's protection domain and returns
  /// its result.  `cost_hint` is extra library-side CPU work to charge
  /// beyond the fixed crossing cost (e.g. header construction for PtlPut).
  virtual sim::CoTask<int> call(std::function<int(Library&)> fn,
                                sim::Time cost_hint) = 0;

  /// Direct (zero-cost) library access for simulation plumbing that has no
  /// real-machine analogue: EQ wait-queue parking, test assertions.
  virtual Library& library() = 0;

  virtual sim::Engine& engine() = 0;

  /// Counting-event / triggered-operation surface.  Non-null only on the
  /// accelerated bridge (the counters live in NIC SRAM); generic-mode
  /// bridges have no firmware matching to hang them off and return null.
  virtual TriggeredOps* triggered() { return nullptr; }
};

}  // namespace xt::ptl
