#pragma once

// Portals 3.3 API types (SAND99-2959 surface).
//
// Names follow the specification (ptl_process_id_t, ptl_md_t, ...) rendered
// in the project's C++ style.  Integer option masks and error codes keep
// their PTL_* spellings so code written against the real portals3.h reads
// the same.

#include <cstdint>
#include <vector>

#include "portals/wire.hpp"

namespace xt::ptl {

// ------------------------------------------------------------ handles ----

/// Generation-checked handle; `kind` only exists to make the handle types
/// mutually unconvertible.
template <int Kind>
struct Handle {
  std::uint32_t idx = 0xFFFFFFFFu;
  std::uint32_t gen = 0;
  bool valid() const { return idx != 0xFFFFFFFFu; }
  friend bool operator==(const Handle&, const Handle&) = default;
};

using NiHandle = Handle<0>;
using MeHandle = Handle<1>;
using MdHandle = Handle<2>;
using EqHandle = Handle<3>;
/// Counting event (Portals-4 ptl_handle_ct_t anticipated by the offload
/// collective engine).  idx is the firmware counter slot of the owning
/// accelerated process.
using CtHandle = Handle<4>;

/// PTL_EQ_NONE / PTL_HANDLE_INVALID analogues.
inline constexpr EqHandle kEqNone{};
inline constexpr MdHandle kMdInvalid{};
inline constexpr MeHandle kMeInvalid{};
inline constexpr CtHandle kCtNone{};

// -------------------------------------------------------- identifiers ----

using Nid = std::uint32_t;  // ptl_nid_t: node id
using Pid = std::uint16_t;  // ptl_pid_t: process id
using MatchBits = std::uint64_t;

inline constexpr Nid kNidAny = 0xFFFFFFFFu;  // PTL_NID_ANY
inline constexpr Pid kPidAny = 0xFFFF;       // PTL_PID_ANY
/// Wildcard portal-table index for access-control entries (PTL_PT_INDEX_ANY).
inline constexpr std::uint32_t kPtIndexAny = 0xFFFFFFFFu;

/// ptl_process_id_t.
struct ProcessId {
  Nid nid = 0;
  Pid pid = 0;
  friend bool operator==(const ProcessId&, const ProcessId&) = default;
};

// ------------------------------------------------------- error codes ----

enum PtlError : int {
  PTL_OK = 0,
  PTL_FAIL,
  PTL_NO_INIT,
  PTL_NO_SPACE,
  PTL_NI_INVALID,
  PTL_PT_INDEX_INVALID,
  PTL_PROCESS_INVALID,
  PTL_MD_INVALID,
  PTL_MD_ILLEGAL,
  PTL_MD_IN_USE,
  PTL_MD_NO_UPDATE,
  PTL_ME_INVALID,
  PTL_ME_IN_USE,
  PTL_ME_LIST_TOO_LONG,
  PTL_EQ_INVALID,
  PTL_EQ_EMPTY,
  PTL_EQ_DROPPED,
  PTL_AC_INDEX_INVALID,
  PTL_HANDLE_INVALID,
  PTL_IFACE_INVALID,
  PTL_PID_INVALID,
  PTL_SEGV,
  PTL_UNKNOWN_ERROR,
};

const char* ptl_err_str(int rc);

// ----------------------------------------------------------- options ----

// ptl_md_t options bits.
inline constexpr unsigned PTL_MD_OP_PUT = 1u << 0;
inline constexpr unsigned PTL_MD_OP_GET = 1u << 1;
inline constexpr unsigned PTL_MD_MANAGE_REMOTE = 1u << 2;
inline constexpr unsigned PTL_MD_TRUNCATE = 1u << 3;
inline constexpr unsigned PTL_MD_ACK_DISABLE = 1u << 4;
/// Auto-unlink when the remaining space drops below max_size (the Lustre
/// buffer-carousel pattern).
inline constexpr unsigned PTL_MD_MAX_SIZE = 1u << 5;
inline constexpr unsigned PTL_MD_EVENT_START_DISABLE = 1u << 6;
inline constexpr unsigned PTL_MD_EVENT_END_DISABLE = 1u << 7;
/// The MD describes a scatter/gather list (MdDesc::iovecs) instead of one
/// contiguous [start, start+length) region.
inline constexpr unsigned PTL_MD_IOVEC = 1u << 8;
/// Count put/atomic deposits into this MD on MdDesc::ct (Portals-4-style
/// counting events; accelerated mode only — the firmware bumps the counter
/// with no host involvement).
inline constexpr unsigned PTL_MD_EVENT_CT_PUT = 1u << 9;

/// ptl_md_t threshold: never exhausts.
inline constexpr int PTL_MD_THRESH_INF = -1;

/// ptl_unlink_t.
enum class Unlink : std::uint8_t { kUnlink, kRetain };
/// ptl_ins_pos_t.
enum class InsPos : std::uint8_t { kBefore, kAfter };

// ------------------------------------------------------- descriptors ----

/// One scatter/gather segment of an MD (ptl_md_iovec_t).
struct IoVec {
  std::uint64_t start = 0;
  std::uint32_t length = 0;
  friend bool operator==(const IoVec&, const IoVec&) = default;
};

/// ptl_md_t: a memory descriptor visible to the API user.  `start` is a
/// virtual address in the owning process's address space.  With
/// PTL_MD_IOVEC set, `iovecs` describes the memory instead and `length`
/// is the total across segments (filled in by the library).
struct MdDesc {
  std::uint64_t start = 0;
  std::uint32_t length = 0;
  int threshold = PTL_MD_THRESH_INF;
  std::uint32_t max_size = 0;
  unsigned options = 0;
  std::uint64_t user_ptr = 0;
  EqHandle eq = kEqNone;
  /// Counting event bumped per deposit when PTL_MD_EVENT_CT_PUT is set.
  CtHandle ct = kCtNone;
  std::vector<IoVec> iovecs;
};

// -------------------------------------------------------------- events ----

/// ptl_event_kind_t (Portals 3.3 event set).
enum class EventType : std::uint8_t {
  kGetStart,    // PTL_EVENT_GET_START   (target, request matched)
  kGetEnd,      // PTL_EVENT_GET_END     (target, reply data sent)
  kPutStart,    // PTL_EVENT_PUT_START   (target, header matched)
  kPutEnd,      // PTL_EVENT_PUT_END     (target, data deposited)
  kReplyStart,  // PTL_EVENT_REPLY_START (initiator, reply header arrived)
  kReplyEnd,    // PTL_EVENT_REPLY_END   (initiator, data deposited)
  kSendStart,   // PTL_EVENT_SEND_START  (initiator, transmit accepted)
  kSendEnd,     // PTL_EVENT_SEND_END    (initiator, transmit complete)
  kAck,         // PTL_EVENT_ACK         (initiator, target delivered)
  kUnlink,      // PTL_EVENT_UNLINK      (owner, ME/MD auto-unlinked)
};

const char* event_type_str(EventType t);

/// ptl_ni_fail_t.
enum NiFail : int {
  PTL_NI_OK = 0,
  PTL_NI_FAIL_DROPPED,
};

/// ptl_event_t.
struct Event {
  EventType type = EventType::kPutStart;
  ProcessId initiator;
  std::uint32_t pt_index = 0;
  MatchBits match_bits = 0;
  std::uint64_t rlength = 0;  // length requested by the operation
  std::uint64_t mlength = 0;  // length actually manipulated
  std::uint64_t offset = 0;   // offset within the MD
  MdHandle md_handle;
  MdDesc md;                  // MD state snapshot at event time
  std::uint64_t hdr_data = 0;
  std::uint64_t user_ptr = 0;
  std::uint64_t link = 0;      // operation link id (start/end pairing)
  std::uint64_t sequence = 0;  // EQ sequence number
  int ni_fail = PTL_NI_OK;
};

// -------------------------------------------------------------- limits ----

/// ptl_ni_limits_t.
struct Limits {
  std::uint32_t max_mes = 4096;
  std::uint32_t max_mds = 4096;
  std::uint32_t max_eqs = 64;
  std::uint32_t max_ac_index = 16;
  std::uint32_t max_pt_index = 64;
  std::uint32_t max_me_list = 4096;  // longest match list
};

/// NI status registers (PtlNIStatus).
enum class SrIndex : std::uint8_t {
  kDropCount,       // PTL_SR_DROP_COUNT
  kPermissionsViolations,
  kMessagesSent,
  kMessagesReceived,
};

}  // namespace xt::ptl
