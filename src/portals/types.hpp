#pragma once

// Portals 3.3 API types (SAND99-2959 surface).
//
// Names follow the specification (ptl_process_id_t, ptl_md_t, ...) rendered
// in the project's C++ style.  Integer option masks and error codes keep
// their PTL_* spellings so code written against the real portals3.h reads
// the same.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

#include "portals/wire.hpp"

namespace xt::ptl {

// ------------------------------------------------------------ handles ----

/// Generation-checked handle; `kind` only exists to make the handle types
/// mutually unconvertible.
template <int Kind>
struct Handle {
  std::uint32_t idx = 0xFFFFFFFFu;
  std::uint32_t gen = 0;
  bool valid() const { return idx != 0xFFFFFFFFu; }
  friend bool operator==(const Handle&, const Handle&) = default;
};

using NiHandle = Handle<0>;
using MeHandle = Handle<1>;
using MdHandle = Handle<2>;
using EqHandle = Handle<3>;
/// Counting event (Portals-4 ptl_handle_ct_t anticipated by the offload
/// collective engine).  idx is the firmware counter slot of the owning
/// accelerated process.
using CtHandle = Handle<4>;

/// PTL_EQ_NONE / PTL_HANDLE_INVALID analogues.
inline constexpr EqHandle kEqNone{};
inline constexpr MdHandle kMdInvalid{};
inline constexpr MeHandle kMeInvalid{};
inline constexpr CtHandle kCtNone{};

// -------------------------------------------------------- identifiers ----

using Nid = std::uint32_t;  // ptl_nid_t: node id
using Pid = std::uint16_t;  // ptl_pid_t: process id
using MatchBits = std::uint64_t;

inline constexpr Nid kNidAny = 0xFFFFFFFFu;  // PTL_NID_ANY
inline constexpr Pid kPidAny = 0xFFFF;       // PTL_PID_ANY
/// Wildcard portal-table index for access-control entries (PTL_PT_INDEX_ANY).
inline constexpr std::uint32_t kPtIndexAny = 0xFFFFFFFFu;

/// ptl_process_id_t.
struct ProcessId {
  Nid nid = 0;
  Pid pid = 0;
  friend bool operator==(const ProcessId&, const ProcessId&) = default;
};

// ------------------------------------------------------- error codes ----

enum PtlError : int {
  PTL_OK = 0,
  PTL_FAIL,
  PTL_NO_INIT,
  PTL_NO_SPACE,
  PTL_NI_INVALID,
  PTL_PT_INDEX_INVALID,
  PTL_PROCESS_INVALID,
  PTL_MD_INVALID,
  PTL_MD_ILLEGAL,
  PTL_MD_IN_USE,
  PTL_MD_NO_UPDATE,
  PTL_ME_INVALID,
  PTL_ME_IN_USE,
  PTL_ME_LIST_TOO_LONG,
  PTL_EQ_INVALID,
  PTL_EQ_EMPTY,
  PTL_EQ_DROPPED,
  PTL_AC_INDEX_INVALID,
  PTL_HANDLE_INVALID,
  PTL_IFACE_INVALID,
  PTL_PID_INVALID,
  PTL_SEGV,
  PTL_UNKNOWN_ERROR,
};

const char* ptl_err_str(int rc);

// ----------------------------------------------------------- options ----

// ptl_md_t options bits.
inline constexpr unsigned PTL_MD_OP_PUT = 1u << 0;
inline constexpr unsigned PTL_MD_OP_GET = 1u << 1;
inline constexpr unsigned PTL_MD_MANAGE_REMOTE = 1u << 2;
inline constexpr unsigned PTL_MD_TRUNCATE = 1u << 3;
inline constexpr unsigned PTL_MD_ACK_DISABLE = 1u << 4;
/// Auto-unlink when the remaining space drops below max_size (the Lustre
/// buffer-carousel pattern).
inline constexpr unsigned PTL_MD_MAX_SIZE = 1u << 5;
inline constexpr unsigned PTL_MD_EVENT_START_DISABLE = 1u << 6;
inline constexpr unsigned PTL_MD_EVENT_END_DISABLE = 1u << 7;
/// The MD describes a scatter/gather list (MdDesc::iovecs) instead of one
/// contiguous [start, start+length) region.
inline constexpr unsigned PTL_MD_IOVEC = 1u << 8;
/// Count put/atomic deposits into this MD on MdDesc::ct (Portals-4-style
/// counting events; accelerated mode only — the firmware bumps the counter
/// with no host involvement).
inline constexpr unsigned PTL_MD_EVENT_CT_PUT = 1u << 9;

/// ptl_md_t threshold: never exhausts.
inline constexpr int PTL_MD_THRESH_INF = -1;

/// ptl_unlink_t.
enum class Unlink : std::uint8_t { kUnlink, kRetain };
/// ptl_ins_pos_t.
enum class InsPos : std::uint8_t { kBefore, kAfter };

// ------------------------------------------------------- descriptors ----

/// One scatter/gather segment of an MD (ptl_md_iovec_t).
struct IoVec {
  std::uint64_t start = 0;
  std::uint32_t length = 0;
  friend bool operator==(const IoVec&, const IoVec&) = default;
};

/// Segment list for the transmit/deposit hot path.  Almost every Portals
/// message describes one contiguous region (a handful for IOVEC MDs), so
/// up to kInlineCapacity segments live inside the object and building or
/// moving a typical list never touches the heap; longer lists spill to an
/// allocation.  Contiguous storage: converts to std::span<const IoVec>.
class IoVecList {
 public:
  static constexpr std::size_t kInlineCapacity = 4;
  using value_type = IoVec;
  using iterator = IoVec*;
  using const_iterator = const IoVec*;

  IoVecList() = default;
  IoVecList(std::initializer_list<IoVec> init) {
    reserve(init.size());
    for (const IoVec& v : init) data_[size_++] = v;
  }
  IoVecList(const IoVecList& o) {
    reserve(o.size_);
    for (std::size_t i = 0; i < o.size_; ++i) data_[i] = o.data_[i];
    size_ = o.size_;
  }
  IoVecList(IoVecList&& o) noexcept { steal(o); }
  IoVecList& operator=(const IoVecList& o) {
    if (this != &o) {
      clear();
      reserve(o.size_);
      for (std::size_t i = 0; i < o.size_; ++i) data_[i] = o.data_[i];
      size_ = o.size_;
    }
    return *this;
  }
  IoVecList& operator=(IoVecList&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  ~IoVecList() { release(); }

  void push_back(const IoVec& v) {
    if (size_ == cap_) reserve(cap_ * 2);
    data_[size_++] = v;
  }
  void reserve(std::size_t n) {
    if (n <= cap_) return;
    IoVec* heap = new IoVec[n];
    for (std::size_t i = 0; i < size_; ++i) heap[i] = data_[i];
    release();
    data_ = heap;
    cap_ = n;
  }
  void clear() { size_ = 0; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  IoVec* data() { return data_; }
  const IoVec* data() const { return data_; }
  IoVec& operator[](std::size_t i) { return data_[i]; }
  const IoVec& operator[](std::size_t i) const { return data_[i]; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  friend bool operator==(const IoVecList& a, const IoVecList& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  bool inlined() const { return data_ == inline_; }
  void release() {
    if (!inlined()) delete[] data_;
    data_ = inline_;
    size_ = 0;
    cap_ = kInlineCapacity;
  }
  /// Takes o's storage (pointer steal when spilled, element copy when
  /// inline) and leaves o empty.
  void steal(IoVecList& o) noexcept {
    if (o.inlined()) {
      for (std::size_t i = 0; i < o.size_; ++i) inline_[i] = o.inline_[i];
      size_ = o.size_;
    } else {
      data_ = std::exchange(o.data_, o.inline_);
      size_ = std::exchange(o.size_, 0);
      cap_ = std::exchange(o.cap_, kInlineCapacity);
      return;
    }
    o.size_ = 0;
  }

  IoVec inline_[kInlineCapacity];
  IoVec* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = kInlineCapacity;
};

/// ptl_md_t: a memory descriptor visible to the API user.  `start` is a
/// virtual address in the owning process's address space.  With
/// PTL_MD_IOVEC set, `iovecs` describes the memory instead and `length`
/// is the total across segments (filled in by the library).
struct MdDesc {
  std::uint64_t start = 0;
  std::uint32_t length = 0;
  int threshold = PTL_MD_THRESH_INF;
  std::uint32_t max_size = 0;
  unsigned options = 0;
  std::uint64_t user_ptr = 0;
  EqHandle eq = kEqNone;
  /// Counting event bumped per deposit when PTL_MD_EVENT_CT_PUT is set.
  CtHandle ct = kCtNone;
  std::vector<IoVec> iovecs;
};

// -------------------------------------------------------------- events ----

/// ptl_event_kind_t (Portals 3.3 event set).
enum class EventType : std::uint8_t {
  kGetStart,    // PTL_EVENT_GET_START   (target, request matched)
  kGetEnd,      // PTL_EVENT_GET_END     (target, reply data sent)
  kPutStart,    // PTL_EVENT_PUT_START   (target, header matched)
  kPutEnd,      // PTL_EVENT_PUT_END     (target, data deposited)
  kReplyStart,  // PTL_EVENT_REPLY_START (initiator, reply header arrived)
  kReplyEnd,    // PTL_EVENT_REPLY_END   (initiator, data deposited)
  kSendStart,   // PTL_EVENT_SEND_START  (initiator, transmit accepted)
  kSendEnd,     // PTL_EVENT_SEND_END    (initiator, transmit complete)
  kAck,         // PTL_EVENT_ACK         (initiator, target delivered)
  kUnlink,      // PTL_EVENT_UNLINK      (owner, ME/MD auto-unlinked)
};

const char* event_type_str(EventType t);

/// ptl_ni_fail_t.
enum NiFail : int {
  PTL_NI_OK = 0,
  PTL_NI_FAIL_DROPPED,
};

/// ptl_event_t.
struct Event {
  EventType type = EventType::kPutStart;
  ProcessId initiator;
  std::uint32_t pt_index = 0;
  MatchBits match_bits = 0;
  std::uint64_t rlength = 0;  // length requested by the operation
  std::uint64_t mlength = 0;  // length actually manipulated
  std::uint64_t offset = 0;   // offset within the MD
  MdHandle md_handle;
  MdDesc md;                  // MD state snapshot at event time
  std::uint64_t hdr_data = 0;
  std::uint64_t user_ptr = 0;
  std::uint64_t link = 0;      // operation link id (start/end pairing)
  std::uint64_t sequence = 0;  // EQ sequence number
  int ni_fail = PTL_NI_OK;
};

// -------------------------------------------------------------- limits ----

/// ptl_ni_limits_t.
struct Limits {
  std::uint32_t max_mes = 4096;
  std::uint32_t max_mds = 4096;
  std::uint32_t max_eqs = 64;
  std::uint32_t max_ac_index = 16;
  std::uint32_t max_pt_index = 64;
  std::uint32_t max_me_list = 4096;  // longest match list
};

/// NI status registers (PtlNIStatus).
enum class SrIndex : std::uint8_t {
  kDropCount,       // PTL_SR_DROP_COUNT
  kPermissionsViolations,
  kMessagesSent,
  kMessagesReceived,
};

}  // namespace xt::ptl
