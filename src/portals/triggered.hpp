#pragma once

// Counting events + triggered operations (the NIC-offload collective
// engine's control surface; Portals-4 anticipated from a Portals 3.3 base).
//
// Only the accelerated bridge implements this interface: the counters and
// the trigger table live in SeaStar SRAM and are driven by the firmware's
// handler loop, so a counter reaching its threshold launches the next hop
// of a collective entirely on the NIC — no host interrupt, no HT read.
// Generic-mode bridges return nullptr from Bridge::triggered() and the
// Api-level PtlCT*/PtlTriggered* calls fail with PTL_NI_INVALID.
//
// Setup-phase calls (alloc/arm) are plain host stores into SRAM; the one
// host touch that STARTS an offloaded collective is ct_inc, which goes
// through the firmware mailbox so the increment and the resulting trigger
// scan run in firmware context.

#include <cstdint>

#include "portals/types.hpp"
#include "sim/task.hpp"

namespace xt::ptl {

class TriggeredOps {
 public:
  virtual ~TriggeredOps() = default;

  // ------------------------------------------------- counting events ----
  virtual int ct_alloc(CtHandle* out) = 0;
  virtual int ct_free(CtHandle ct) = 0;
  virtual int ct_get(CtHandle ct, std::uint64_t* value) = 0;
  /// Plain store (setup/rearm only; does not run the trigger scan).
  virtual int ct_set(CtHandle ct, std::uint64_t value) = 0;
  /// Mailbox increment — the host touch that starts an offloaded
  /// collective; the firmware bumps the counter and scans the triggers.
  virtual int ct_inc(CtHandle ct, std::uint64_t inc) = 0;
  /// Suspends the calling process until the counter reaches `threshold`
  /// (polling the process-space counter mirror).
  virtual sim::CoTask<int> ct_wait(CtHandle ct, std::uint64_t threshold,
                                   std::uint64_t* value) = 0;

  // --------------------------------------------- triggered operations ----
  /// Arms a put of [offset, offset+len) of `md` that fires when `trig_ct`
  /// reaches `threshold`.  With `atomic` the target deposit ACCUMULATES
  /// (f64 sum) instead of overwriting.  The payload is read from host
  /// memory at FIRE time, so a put of an accumulation buffer ships the
  /// values deposited since arming.  Fire-and-forget: no initiator-side
  /// events are generated.  PTL_NO_SPACE when the trigger table is full.
  virtual int triggered_put(MdHandle md, std::uint64_t offset,
                            std::uint32_t len, ProcessId target,
                            std::uint32_t pt_index, std::uint32_t ac_index,
                            MatchBits mbits, std::uint64_t remote_offset,
                            std::uint64_t hdr_data, bool atomic,
                            CtHandle trig_ct, std::uint64_t threshold) = 0;
  /// Arms a counter chain: target_ct += inc when trig_ct reaches
  /// threshold (lets one arrival cascade into several launches).
  virtual int triggered_ct_inc(CtHandle trig_ct, std::uint64_t threshold,
                               CtHandle target_ct, std::uint64_t inc) = 0;
  /// Clears the fired flags so an identical schedule can run again
  /// (per-iteration rearm; counters must be ct_set back too).
  virtual int rearm_triggers() = 0;
  /// Drops every armed trigger (new collective schedule).
  virtual int reset_triggers() = 0;
  virtual std::size_t triggers_armed() const = 0;
};

}  // namespace xt::ptl
