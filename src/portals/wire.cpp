#include "portals/wire.hpp"

#include <cassert>
#include <cstring>

namespace xt::ptl {

namespace {

template <typename T>
void put(std::span<std::byte> out, std::size_t& off, T v) {
  std::memcpy(out.data() + off, &v, sizeof(T));
  off += sizeof(T);
}

template <typename T>
T get(std::span<const std::byte> in, std::size_t& off) {
  T v;
  std::memcpy(&v, in.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

}  // namespace

void pack_header(const WireHeader& h, std::span<std::byte> out) {
  assert(out.size() >= kWireHeaderBytes);
  std::size_t off = 0;
  put(out, off, static_cast<std::uint8_t>(h.op));
  put(out, off, static_cast<std::uint8_t>(h.ack_req));
  put(out, off, h.src_nid);
  put(out, off, h.src_pid);
  put(out, off, h.dst_pid);
  put(out, off, h.pt_index);
  put(out, off, h.ac_index);
  put(out, off, h.match_bits);
  put(out, off, h.remote_offset);
  put(out, off, h.length);
  put(out, off, h.hdr_data);
  put(out, off, h.md_id);
  put(out, off, h.md_gen);
  put(out, off, h.stream_seq);
  assert(off == kWireHeaderBytes);
}

WireHeader unpack_header(std::span<const std::byte> in) {
  assert(in.size() >= kWireHeaderBytes);
  WireHeader h;
  std::size_t off = 0;
  h.op = static_cast<WireOp>(get<std::uint8_t>(in, off));
  h.ack_req = static_cast<AckReq>(get<std::uint8_t>(in, off));
  h.src_nid = get<std::uint32_t>(in, off);
  h.src_pid = get<std::uint16_t>(in, off);
  h.dst_pid = get<std::uint16_t>(in, off);
  h.pt_index = get<std::uint8_t>(in, off);
  h.ac_index = get<std::uint8_t>(in, off);
  h.match_bits = get<std::uint64_t>(in, off);
  h.remote_offset = get<std::uint64_t>(in, off);
  h.length = get<std::uint32_t>(in, off);
  h.hdr_data = get<std::uint64_t>(in, off);
  h.md_id = get<std::uint32_t>(in, off);
  h.md_gen = get<std::uint32_t>(in, off);
  h.stream_seq = get<std::uint32_t>(in, off);
  assert(off == kWireHeaderBytes);
  return h;
}

std::array<std::byte, kHeaderPacketBytes> make_header_packet(
    const WireHeader& h, std::span<const std::byte> inline_payload) {
  assert(inline_payload.size() <= kMaxInlineBytes);
  std::array<std::byte, kHeaderPacketBytes> pkt{};
  pack_header(h, pkt);
  if (!inline_payload.empty()) {
    std::memcpy(pkt.data() + kWireHeaderBytes, inline_payload.data(),
                inline_payload.size());
  }
  return pkt;
}

std::span<const std::byte> inline_payload_of(
    std::span<const std::byte> packet) {
  assert(packet.size() >= kWireHeaderBytes);
  const WireHeader h = unpack_header(packet);
  const std::size_t n =
      std::min<std::size_t>(h.length, kMaxInlineBytes);
  if (packet.size() < kWireHeaderBytes + n) return {};
  return packet.subspan(kWireHeaderBytes, n);
}

}  // namespace xt::ptl
