#pragma once

// The public Portals 3.3 API (what an application links against).
//
// Method names mirror the specification's C functions.  Calls that the real
// API would execute synchronously return sim::CoTask<int> because in this
// simulation every call costs simulated time (trap + library work); the
// application — itself a simulated-process coroutine — co_awaits them:
//
//   xt::ptl::Api& ptl = process.api();
//   co_await ptl.PtlMEAttach(0, match_any, 7, 0, ...);
//   auto [rc, ev] = co_await ptl.PtlEQWait(eq);
//
// PtlEQWait is the one genuinely blocking call in Portals 3.3 and is the
// only place the coroutine adaptation is visible: it suspends the simulated
// process until the library posts an event (see DESIGN.md §4).

#include <span>
#include <utility>

#include "portals/bridge.hpp"
#include "portals/types.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace xt::ptl {

/// Result pair for calls with an out-value.
template <typename T>
struct Res {
  int rc = PTL_FAIL;
  T value{};
};

class Api {
 public:
  /// `call_cost` is charged (beyond the bridge crossing) per API call;
  /// `data_cost` per Put/Get to model header construction.
  Api(Bridge& bridge, sim::Time call_cost, sim::Time data_cost)
      : b_(bridge), call_cost_(call_cost), data_cost_(data_cost) {}

  // --------------------------------------------------- NI lifecycle ----
  /// PtlInit/PtlFini bookkeeping (one interface per process here).
  sim::CoTask<Res<int>> PtlInit();  // value = max_interfaces
  sim::CoTask<int> PtlFini();
  /// Negotiates NI limits (optional: the NI starts pre-initialized).
  sim::CoTask<Res<Limits>> PtlNIInit(const Limits& desired);
  /// Tears down all MEs/MDs/EQs on the interface.
  sim::CoTask<int> PtlNIFini();

  // ------------------------------------------------------ identity ----
  sim::CoTask<Res<ProcessId>> PtlGetId();
  sim::CoTask<Res<std::uint64_t>> PtlNIStatus(SrIndex sr);
  /// Network distance (hops) to another node.
  sim::CoTask<Res<std::uint32_t>> PtlNIDist(std::uint32_t nid);

  // ------------------------------------------------------------ ME ----
  sim::CoTask<Res<MeHandle>> PtlMEAttach(std::uint32_t pt_index,
                                         ProcessId match_id, MatchBits mbits,
                                         MatchBits ibits, Unlink unlink,
                                         InsPos pos);
  sim::CoTask<Res<MeHandle>> PtlMEInsert(MeHandle base, ProcessId match_id,
                                         MatchBits mbits, MatchBits ibits,
                                         Unlink unlink, InsPos pos);
  sim::CoTask<int> PtlMEUnlink(MeHandle me);

  // ------------------------------------------------------------ MD ----
  sim::CoTask<Res<MdHandle>> PtlMDAttach(MeHandle me, MdDesc md,
                                         Unlink unlink_op);
  sim::CoTask<Res<MdHandle>> PtlMDBind(MdDesc md, Unlink unlink_op);
  sim::CoTask<int> PtlMDUnlink(MdHandle md);
  sim::CoTask<Res<MdDesc>> PtlMDUpdate(MdHandle md, const MdDesc* new_md,
                                       EqHandle test_eq);

  // ------------------------------------------------------------ EQ ----
  sim::CoTask<Res<EqHandle>> PtlEQAlloc(std::size_t count);
  sim::CoTask<int> PtlEQFree(EqHandle eq);
  sim::CoTask<Res<Event>> PtlEQGet(EqHandle eq);
  /// Blocks (suspends) until an event is available.
  sim::CoTask<Res<Event>> PtlEQWait(EqHandle eq);
  /// Polls several EQs until one has an event or `timeout` elapses
  /// (sim::Time::max() waits forever).  On success `which` receives the
  /// index of the EQ that produced the event.
  sim::CoTask<Res<Event>> PtlEQPoll(std::span<const EqHandle> eqs,
                                    sim::Time timeout, std::size_t* which);

  // ------------------------------------------------------------ AC ----
  sim::CoTask<int> PtlACEntry(std::uint32_t ac_index, ProcessId match_id,
                              std::uint32_t pt_index);

  // ---------------------------------------------------- data movement ----
  sim::CoTask<int> PtlPut(MdHandle md, AckReq ack, ProcessId target,
                          std::uint32_t pt_index, std::uint32_t ac_index,
                          MatchBits mbits, std::uint64_t remote_offset,
                          std::uint64_t hdr_data);
  sim::CoTask<int> PtlPutRegion(MdHandle md, std::uint64_t offset,
                                std::uint32_t len, AckReq ack,
                                ProcessId target, std::uint32_t pt_index,
                                std::uint32_t ac_index, MatchBits mbits,
                                std::uint64_t remote_offset,
                                std::uint64_t hdr_data);
  sim::CoTask<int> PtlGet(MdHandle md, ProcessId target,
                          std::uint32_t pt_index, std::uint32_t ac_index,
                          MatchBits mbits, std::uint64_t remote_offset);
  sim::CoTask<int> PtlGetRegion(MdHandle md, std::uint64_t offset,
                                std::uint32_t len, ProcessId target,
                                std::uint32_t pt_index,
                                std::uint32_t ac_index, MatchBits mbits,
                                std::uint64_t remote_offset);
  /// Put whose target deposit accumulates (f64 sum) instead of
  /// overwriting; initiator semantics identical to PtlPut.
  sim::CoTask<int> PtlAtomicSum(MdHandle md, AckReq ack, ProcessId target,
                                std::uint32_t pt_index,
                                std::uint32_t ac_index, MatchBits mbits,
                                std::uint64_t remote_offset,
                                std::uint64_t hdr_data);
  sim::CoTask<int> PtlAtomicSumRegion(MdHandle md, std::uint64_t offset,
                                      std::uint32_t len, AckReq ack,
                                      ProcessId target,
                                      std::uint32_t pt_index,
                                      std::uint32_t ac_index, MatchBits mbits,
                                      std::uint64_t remote_offset,
                                      std::uint64_t hdr_data);

  // -------------------- counting events + triggered ops (accel only) ----
  // Portals-4-style entry points backed by the firmware's SRAM counter and
  // trigger tables (see portals/triggered.hpp).  On a generic-mode bridge
  // (no TriggeredOps) every call returns PTL_NI_INVALID.
  sim::CoTask<Res<CtHandle>> PtlCTAlloc();
  sim::CoTask<int> PtlCTFree(CtHandle ct);
  sim::CoTask<Res<std::uint64_t>> PtlCTGet(CtHandle ct);
  sim::CoTask<int> PtlCTSet(CtHandle ct, std::uint64_t value);
  /// Mailbox increment: the host touch that starts an offloaded
  /// collective.
  sim::CoTask<int> PtlCTInc(CtHandle ct, std::uint64_t inc);
  /// Suspends until the counter reaches `threshold`; value at wakeup.
  sim::CoTask<Res<std::uint64_t>> PtlCTWait(CtHandle ct,
                                            std::uint64_t threshold);
  sim::CoTask<int> PtlTriggeredPut(MdHandle md, std::uint64_t offset,
                                   std::uint32_t len, ProcessId target,
                                   std::uint32_t pt_index,
                                   std::uint32_t ac_index, MatchBits mbits,
                                   std::uint64_t remote_offset,
                                   std::uint64_t hdr_data, CtHandle trig_ct,
                                   std::uint64_t threshold);
  sim::CoTask<int> PtlTriggeredAtomicSum(MdHandle md, std::uint64_t offset,
                                         std::uint32_t len, ProcessId target,
                                         std::uint32_t pt_index,
                                         std::uint32_t ac_index,
                                         MatchBits mbits,
                                         std::uint64_t remote_offset,
                                         std::uint64_t hdr_data,
                                         CtHandle trig_ct,
                                         std::uint64_t threshold);
  sim::CoTask<int> PtlTriggeredCTInc(CtHandle trig_ct,
                                     std::uint64_t threshold,
                                     CtHandle target_ct, std::uint64_t inc);
  /// Clears fired flags so the armed schedule can run another iteration.
  sim::CoTask<int> PtlCTRearm();
  /// Drops every armed trigger.
  sim::CoTask<int> PtlCTResetTriggers();

  /// PtlHandleIsEqual for any handle kind.
  template <int K>
  static bool PtlHandleIsEqual(Handle<K> a, Handle<K> b) {
    return a == b;
  }

  Bridge& bridge() { return b_; }

 private:
  Bridge& b_;
  sim::Time call_cost_;
  sim::Time data_cost_;
};

}  // namespace xt::ptl
