#pragma once

// The Portals 3.3 reference library (§3.1).
//
// One Library instance holds the complete Portals state of one process on
// one network interface: the portal table, match lists, memory descriptors,
// event queues and the access control list.  It is deliberately pure
// policy: all I/O goes through the Nal (transmits) and Memory (local
// copies) seams, and all *timing* is charged by whoever calls it (the
// kernel agent in generic mode, the firmware's AccelMatcher adapter in
// accelerated mode).  That is exactly the code-sharing structure the paper
// describes: the same library runs beneath the qkbridge, ukbridge and
// kbridge, and pieces of it are what accelerated mode offloads.
//
// Method groups:
//   * API side   — one method per Ptl* call, invoked through a bridge.
//   * wire side  — header/deposit/transmit-complete callbacks, invoked by
//                  the NAL when the firmware reports progress.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "portals/eq.hpp"
#include "portals/nal.hpp"
#include "portals/types.hpp"
#include "sim/engine.hpp"
#include "sim/flat_map.hpp"
#include "telemetry/metrics.hpp"

namespace xt::ptl {

/// Match-list search strategy (§3.1 matching).
///   kIndexed — per-(portal, match-bits) hash index + ordered wildcard
///              chain; semantically identical to the linear walk.
///   kLinear  — the reference linear walk over the full match list.
///   kShadow  — run BOTH on every decision and assert they agree (the
///              differential verification rig; test/CI mode).
enum class MatchMode : std::uint8_t { kIndexed, kLinear, kShadow };

class Library {
 public:
  struct Config {
    ProcessId id;
    Limits limits{};
    /// Install a permissive entry in AC slot 0 at construction (wildcard
    /// source, any portal).  Convenience default; disable to exercise the
    /// access-control path explicitly.
    bool permissive_ac0 = true;
    /// Match-list search strategy.  The default (kIndexed) is upgraded to
    /// kShadow when the environment sets XT_SHADOW_MATCH=1, so a whole
    /// test suite can run under the differential rig without plumbing.
    MatchMode match_mode = MatchMode::kIndexed;
  };

  Library(sim::Engine& eng, Config cfg, Nal& nal, Memory& mem);

  // ------------------------------------------------------- API side ----

  /// PtlNIInit: negotiates limits.  Desired values are clamped against the
  /// implementation's hard caps; the result is written to `actual` and
  /// becomes the NI's enforced limits.  Returns PTL_NI_INVALID once any
  /// object (ME/MD/EQ) has been allocated — limits cannot shrink under
  /// live objects.  (In this adaptation the NI starts pre-initialized with
  /// Config::limits, so calling ni_init is optional.)
  int ni_init(const Limits& desired, Limits* actual);
  /// PtlNIFini: tears down every ME, MD and EQ; outstanding operations are
  /// abandoned.  The NI may be re-initialized afterwards.
  int ni_fini();

  int eq_alloc(std::size_t count, EqHandle* out);
  int eq_free(EqHandle eq);
  int eq_get(EqHandle eq, Event* out);

  int me_attach(std::uint32_t pt_index, ProcessId match_id, MatchBits mbits,
                MatchBits ibits, Unlink unlink, InsPos pos, MeHandle* out);
  int me_insert(MeHandle base, ProcessId match_id, MatchBits mbits,
                MatchBits ibits, Unlink unlink, InsPos pos, MeHandle* out);
  int me_unlink(MeHandle me);

  int md_attach(MeHandle me, MdDesc desc, Unlink unlink_op, MdHandle* out);
  int md_bind(MdDesc desc, Unlink unlink_op, MdHandle* out);
  int md_unlink(MdHandle md);
  int md_update(MdHandle md, MdDesc* old_desc, const MdDesc* new_desc,
                EqHandle test_eq);

  int ac_entry(std::uint32_t ac_index, ProcessId match_id,
               std::uint32_t pt_index);

  int put(MdHandle md, AckReq ack, ProcessId target, std::uint32_t pt_index,
          std::uint32_t ac_index, MatchBits mbits, std::uint64_t remote_offset,
          std::uint64_t hdr_data);
  /// PtlPutRegion: transmit [offset, offset+len) of the MD.
  int put_region(MdHandle md, std::uint64_t offset, std::uint32_t len,
                 AckReq ack, ProcessId target, std::uint32_t pt_index,
                 std::uint32_t ac_index, MatchBits mbits,
                 std::uint64_t remote_offset, std::uint64_t hdr_data);
  int get(MdHandle md, ProcessId target, std::uint32_t pt_index,
          std::uint32_t ac_index, MatchBits mbits,
          std::uint64_t remote_offset);
  int get_region(MdHandle md, std::uint64_t offset, std::uint32_t len,
                 ProcessId target, std::uint32_t pt_index,
                 std::uint32_t ac_index, MatchBits mbits,
                 std::uint64_t remote_offset);
  /// PtlAtomicSum: a put whose deposit ACCUMULATES (f64 sum) at the
  /// target.  Initiator-side semantics (events, acks, MD consumption) are
  /// identical to put.
  int put_atomic(MdHandle md, AckReq ack, ProcessId target,
                 std::uint32_t pt_index, std::uint32_t ac_index,
                 MatchBits mbits, std::uint64_t remote_offset,
                 std::uint64_t hdr_data);
  int put_atomic_region(MdHandle md, std::uint64_t offset, std::uint32_t len,
                        AckReq ack, ProcessId target, std::uint32_t pt_index,
                        std::uint32_t ac_index, MatchBits mbits,
                        std::uint64_t remote_offset, std::uint64_t hdr_data);

  ProcessId id() const { return cfg_.id; }
  const Limits& limits() const { return cfg_.limits; }
  MatchMode match_mode() const { return cfg_.match_mode; }
  /// Shadow-matcher introspection (kShadow only).  A mismatch between the
  /// indexed and reference matchers aborts by default; tests that want to
  /// observe a divergence instead call set_shadow_abort(false) and read
  /// the counter + the first divergence report.
  void set_shadow_abort(bool abort_on_mismatch) {
    shadow_abort_ = abort_on_mismatch;
  }
  std::uint64_t shadow_mismatches() const { return shadow_mismatches_; }
  const std::string& shadow_report() const { return shadow_report_; }
  std::uint64_t status(SrIndex sr) const;
  /// PtlNIDist: network hops to `nid` (from the NAL's routing tables).
  int ni_dist(std::uint32_t nid) const { return nal_.distance(nid); }

  /// EQ object access (the Api layer waits on its WaitQueue; the kernel
  /// agent never needs this).
  EventQueue* eq_object(EqHandle eq);

  /// Segments covering the byte range [offset, offset+len) of an MD's
  /// logical space (one entry for contiguous MDs; pieces of the iovec list
  /// for PTL_MD_IOVEC descriptors).
  static IoVecList md_slice(const MdDesc& desc, std::uint64_t offset,
                            std::uint32_t len);

  /// Segments of [offset, offset+len) of a LIVE MD — the triggered-op
  /// engine builds fire-time DMA programs from this.  PTL_MD_INVALID /
  /// PTL_MD_ILLEGAL on a dead handle or out-of-range window.
  int md_segments(MdHandle md, std::uint64_t offset, std::uint32_t len,
                  IoVecList* out);

  // ------------------------------------------------------ wire side ----

  /// Deposit decision for an incoming put or reply header.
  struct RxDecision {
    bool deliver = false;       // false: drop (still consume the body)
    std::uint32_t mlength = 0;  // bytes to deposit
    /// Destination memory: one segment for contiguous MDs, several for
    /// PTL_MD_IOVEC descriptors.  Segments cover exactly mlength bytes.
    IoVecList segments;
    std::uint64_t token = 0;     // hand back in deposited()/dropped()
    std::size_t entries_walked = 0;  // match-list work (for cost models)
    /// Counting event of the matched MD (PTL_MD_EVENT_CT_PUT); kCtNone
    /// when the MD does not count deposits.
    CtHandle ct = kCtNone;
    /// The matched MD has no EQ: nothing to post, so a CT-counted deposit
    /// can complete entirely in firmware (the offload data path).
    bool eqless = false;
  };
  /// Incoming put header: ACL check + matching + START event.
  RxDecision on_put_header(const WireHeader& hdr);
  /// Incoming reply header (no matching: the header's md token routes it).
  RxDecision on_reply_header(const WireHeader& hdr);
  /// Deposit finished (or no payload): posts the END event; for puts,
  /// returns the ack header to send back, if any.
  std::optional<WireHeader> deposited(std::uint64_t token);
  /// The message backing `token` was dropped after the header (CRC fail):
  /// post no END event, count the failure.
  void rx_dropped(std::uint64_t token);

  /// Reply program for an incoming get request.
  struct GetDecision {
    bool deliver = false;
    std::uint32_t mlength = 0;
    /// Source memory for the reply (scatter/gather for IOVEC MDs).
    IoVecList segments;
    std::uint64_t token = 0;     // echo via reply_sent()
    WireHeader reply_header;     // ready to transmit (op kReply)
    std::size_t entries_walked = 0;
  };
  GetDecision on_get_header(const WireHeader& hdr);
  /// The reply transmit for a get completed: posts GET_END at the target.
  void reply_sent(std::uint64_t token);

  /// Incoming ack (initiator side): posts PTL_EVENT_ACK.
  void on_ack(const WireHeader& hdr);

  /// A put/get-request transmit completed: posts SEND_END for puts.
  void send_complete(std::uint64_t token);

 private:
  struct MeRec {
    bool live = false;
    std::uint32_t gen = 1;
    std::uint32_t pt_index = 0;
    ProcessId match_id;
    MatchBits mbits = 0;
    MatchBits ibits = 0;
    Unlink unlink = Unlink::kRetain;
    MdHandle md;  // invalid when no MD attached
    // Intrusive list links (indices into mes_), per portal-table entry.
    std::uint32_t next = kNone;
    std::uint32_t prev = kNone;
    // Index chain links: the exact bucket for this entry's mbits when
    // ibits == 0, else the portal's wildcard chain.  Chains are kept in
    // `label` order so the indexed matcher can merge-walk them in exact
    // match-list order.
    std::uint32_t inext = kNone;
    std::uint32_t iprev = kNone;
    // Order-maintenance label: strictly increasing along the main list.
    std::uint64_t label = 0;
  };

  struct MdRec {
    bool live = false;
    std::uint32_t gen = 1;
    MdDesc desc;
    Unlink unlink_op = Unlink::kRetain;
    MeHandle me;  // invalid for free-floating (md_bind) descriptors
    std::uint64_t local_offset = 0;
    int threshold = PTL_MD_THRESH_INF;
    bool inactive = false;
    std::uint32_t pending_ops = 0;  // in-flight ops referencing this MD
    bool unlink_when_idle = false;
  };

  /// One label-ordered index chain (threaded through MeRec::inext/iprev).
  struct Chain {
    std::uint32_t head = kNone;
    std::uint32_t tail = kNone;
  };

  struct PtEntry {
    std::uint32_t head = kNone;
    std::uint32_t tail = kNone;
    std::size_t length = 0;
    /// Exact-match index: mbits -> chain of MEs with ibits == 0 and that
    /// exact mbits.  MEs with any ignore bits live on the wildcard chain
    /// (they can accept many keys, so they are merge-walked every time).
    sim::FlatU64Map<Chain> buckets;
    Chain wild;
  };

  struct AcSlot {
    bool set = false;
    ProcessId match_id;
    std::uint32_t pt_index = kPtIndexAny;
  };

  /// In-flight operation bookkeeping (initiator and target sides).
  struct OpRec {
    enum class Kind : std::uint8_t {
      kPutOut,    // initiated put (send events + ack)
      kGetOut,    // initiated get (reply events)
      kPutIn,     // incoming put being deposited
      kReplyIn,   // incoming reply being deposited
      kGetIn,     // incoming get whose reply is in flight
    };
    Kind kind = Kind::kPutOut;
    MdHandle md;
    std::uint64_t link = 0;    // start/end pairing id
    std::uint32_t pt_index = 0;
    MatchBits mbits = 0;
    ProcessId peer;            // initiator (target side) or target
    std::uint64_t rlength = 0;
    std::uint64_t mlength = 0;
    std::uint64_t offset = 0;
    std::uint64_t hdr_data = 0;
    AckReq ack = AckReq::kNone;
    WireHeader ack_hdr;        // prebuilt for puts that want an ack
    bool tx_done = false;      // SEND_END posted (initiated puts)
    bool ack_done = false;     // PTL_EVENT_ACK posted (initiated puts)
  };

  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  MeRec* me_deref(MeHandle h);
  MdRec* md_deref(MdHandle h);
  bool md_active(const MdRec& md) const;
  /// Source/bits matching for one entry.
  static bool me_matches(const MeRec& me, const WireHeader& hdr);
  /// ACL check; increments the violation counter on failure.
  bool ac_check(const WireHeader& hdr);
  /// Full acceptance test for one ME (matching + MD state + op bit +
  /// truncation); fills offset/mlength on acceptance.
  bool me_accepts(std::uint32_t idx, const WireHeader& hdr, bool is_get,
                  std::uint64_t* offset_out, std::uint32_t* mlength_out);
  /// Searches pt[pt_index] per cfg_.match_mode; returns the accepting ME
  /// index or kNone.  All instrumentation lives here, not in the
  /// strategy walks, so shadow mode never double-counts.
  std::uint32_t match_walk(const WireHeader& hdr, bool is_get,
                           std::uint64_t* offset_out,
                           std::uint32_t* mlength_out,
                           std::size_t* walked_out);
  /// Reference linear walk (no instrumentation).
  std::uint32_t match_walk_linear(const WireHeader& hdr, bool is_get,
                                  std::uint64_t* offset_out,
                                  std::uint32_t* mlength_out,
                                  std::size_t* walked_out);
  /// Indexed walk: label-ordered merge of the exact bucket and wildcard
  /// chain.  Reports the same entries_walked the linear walk would (list
  /// position on hit, list length on miss) so the simulated per-entry
  /// match cost — and therefore every golden output — is unchanged.
  std::uint32_t match_walk_indexed(const WireHeader& hdr, bool is_get,
                                   std::uint64_t* offset_out,
                                   std::uint32_t* mlength_out,
                                   std::size_t* walked_out);
  /// Index maintenance: chain membership + order labels.
  Chain& chain_of(MeRec& me);
  void index_link(std::uint32_t idx);
  void index_unlink(std::uint32_t idx);
  void assign_label_tail(std::uint32_t idx);
  void assign_label_head(std::uint32_t idx);
  /// Label for a new entry strictly between lo_idx and hi_idx (either may
  /// be kNone for the list ends); relabels the portal on gap exhaustion.
  void assign_label_between(std::uint32_t idx, std::uint32_t lo_idx,
                            std::uint32_t hi_idx);
  void relabel_pt(PtEntry& pt);
  /// Consumes one operation on an MD: threshold, offset, auto-unlink.
  void md_consume(std::uint32_t me_idx, MdRec& md, std::uint64_t offset,
                  std::uint32_t mlength, bool manage_remote);
  void post_event(const MdRec& md, Event ev);
  void post_event_to(EqHandle eq, Event ev);
  /// InvariantChecker key for one of this NI's event queues.
  std::uint64_t eq_probe_key(EqHandle eq) const;
  /// Fault-injection ack/reply deadline for op `token` expired: if the op
  /// is still open, fail it with a PTL_NI_FAIL_DROPPED event.
  void ack_timeout(std::uint64_t token);
  /// Auto-unlink an MD (and its ME if so configured), posting kUnlink.
  void auto_unlink(MdHandle mdh);
  void unlink_me_internal(std::uint32_t idx);
  void release_op_md(MdHandle mdh);
  /// Retire an MD record and recycle its slot.
  void kill_md(std::uint32_t idx);
  /// Pop a free slot (or grow) for a new ME/MD record; kNone when the
  /// limit is reached.
  std::uint32_t alloc_me_slot();
  std::uint32_t alloc_md_slot();
  void shadow_check(const WireHeader& hdr, bool is_get, std::uint32_t ref,
                    std::uint32_t got, std::uint64_t ref_off,
                    std::uint64_t got_off, std::uint32_t ref_len,
                    std::uint32_t got_len, std::size_t ref_walked,
                    std::size_t got_walked);
  Event make_event(const OpRec& op, EventType type) const;
  int start_outgoing(OpRec::Kind kind, Nal::TxKind txkind, MdHandle mdh,
                     std::uint64_t offset, std::uint32_t len, AckReq ack,
                     ProcessId target, std::uint32_t pt_index,
                     std::uint32_t ac_index, MatchBits mbits,
                     std::uint64_t remote_offset, std::uint64_t hdr_data,
                     bool atomic = false);

  sim::Engine& eng_;
  Config cfg_;
  Nal& nal_;
  Memory& mem_;

  std::vector<MeRec> mes_;
  std::vector<MdRec> mds_;
  // LIFO free lists over dead mes_/mds_ slots: O(1) slot reuse in place
  // of the old first-fit scan over every record.
  std::vector<std::uint32_t> me_free_;
  std::vector<std::uint32_t> md_free_;
  std::vector<std::unique_ptr<EventQueue>> eqs_;
  std::vector<std::uint32_t> eq_gens_;
  std::vector<PtEntry> pt_;
  std::vector<AcSlot> ac_;

  sim::FlatU64Map<OpRec> ops_;
  std::uint64_t next_token_ = 1;
  std::uint64_t next_link_ = 1;

  // Shadow-matcher state (kShadow mode only).
  bool shadow_abort_ = true;
  std::uint64_t shadow_mismatches_ = 0;
  std::string shadow_report_;

  // Status registers.
  std::uint64_t drops_ = 0;
  std::uint64_t perm_violations_ = 0;
  std::uint64_t msgs_sent_ = 0;
  std::uint64_t msgs_received_ = 0;

  // Registry instruments ("ptl.nN.pP.*"): match-walk effort (entries
  // examined vs. accepting/rejecting walks) and EQ backlog at post time
  // (the depth samples are gated on MetricsRegistry::sampling()).
  telemetry::Counter* c_match_attempts_ = nullptr;
  telemetry::Counter* c_match_hits_ = nullptr;
  telemetry::Counter* c_match_misses_ = nullptr;
  telemetry::Histogram* h_eq_depth_ = nullptr;
  /// Index probes (candidates examined) per indexed walk — the measure of
  /// how much work the index actually saves vs. entries_walked.
  telemetry::Histogram* h_match_probe_ = nullptr;
};

}  // namespace xt::ptl
