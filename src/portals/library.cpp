#include "portals/library.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "sim/strf.hpp"

namespace xt::ptl {

const char* ptl_err_str(int rc) {
  switch (rc) {
    case PTL_OK: return "PTL_OK";
    case PTL_FAIL: return "PTL_FAIL";
    case PTL_NO_INIT: return "PTL_NO_INIT";
    case PTL_NO_SPACE: return "PTL_NO_SPACE";
    case PTL_NI_INVALID: return "PTL_NI_INVALID";
    case PTL_PT_INDEX_INVALID: return "PTL_PT_INDEX_INVALID";
    case PTL_PROCESS_INVALID: return "PTL_PROCESS_INVALID";
    case PTL_MD_INVALID: return "PTL_MD_INVALID";
    case PTL_MD_ILLEGAL: return "PTL_MD_ILLEGAL";
    case PTL_MD_IN_USE: return "PTL_MD_IN_USE";
    case PTL_MD_NO_UPDATE: return "PTL_MD_NO_UPDATE";
    case PTL_ME_INVALID: return "PTL_ME_INVALID";
    case PTL_ME_IN_USE: return "PTL_ME_IN_USE";
    case PTL_ME_LIST_TOO_LONG: return "PTL_ME_LIST_TOO_LONG";
    case PTL_EQ_INVALID: return "PTL_EQ_INVALID";
    case PTL_EQ_EMPTY: return "PTL_EQ_EMPTY";
    case PTL_EQ_DROPPED: return "PTL_EQ_DROPPED";
    case PTL_AC_INDEX_INVALID: return "PTL_AC_INDEX_INVALID";
    case PTL_HANDLE_INVALID: return "PTL_HANDLE_INVALID";
    case PTL_IFACE_INVALID: return "PTL_IFACE_INVALID";
    case PTL_PID_INVALID: return "PTL_PID_INVALID";
    case PTL_SEGV: return "PTL_SEGV";
    default: return "PTL_UNKNOWN_ERROR";
  }
}

const char* event_type_str(EventType t) {
  switch (t) {
    case EventType::kGetStart: return "GET_START";
    case EventType::kGetEnd: return "GET_END";
    case EventType::kPutStart: return "PUT_START";
    case EventType::kPutEnd: return "PUT_END";
    case EventType::kReplyStart: return "REPLY_START";
    case EventType::kReplyEnd: return "REPLY_END";
    case EventType::kSendStart: return "SEND_START";
    case EventType::kSendEnd: return "SEND_END";
    case EventType::kAck: return "ACK";
    case EventType::kUnlink: return "UNLINK";
  }
  return "?";
}

namespace {

std::uint64_t token_of(const WireHeader& h) {
  return (static_cast<std::uint64_t>(h.md_gen) << 32) | h.md_id;
}

void token_into(WireHeader& h, std::uint64_t token) {
  h.md_id = static_cast<std::uint32_t>(token & 0xFFFFFFFFu);
  h.md_gen = static_cast<std::uint32_t>(token >> 32);
}

}  // namespace

Library::Library(sim::Engine& eng, Config cfg, Nal& nal, Memory& mem)
    : eng_(eng), cfg_(cfg), nal_(nal), mem_(mem) {
  // XT_SHADOW_MATCH=1 upgrades the default strategy to the differential
  // shadow rig; an explicit kLinear/kShadow in the config is respected.
  if (cfg_.match_mode == MatchMode::kIndexed) {
    if (const char* env = std::getenv("XT_SHADOW_MATCH");
        env != nullptr && std::strcmp(env, "1") == 0) {
      cfg_.match_mode = MatchMode::kShadow;
    }
  }
  pt_.resize(cfg_.limits.max_pt_index);
  ac_.resize(cfg_.limits.max_ac_index);
  eqs_.resize(cfg_.limits.max_eqs);
  eq_gens_.assign(cfg_.limits.max_eqs, 1);
  if (cfg_.permissive_ac0 && !ac_.empty()) {
    ac_[0].set = true;
    ac_[0].match_id = ProcessId{kNidAny, kPidAny};
    ac_[0].pt_index = kPtIndexAny;
  }
  auto& reg = eng_.metrics();
  const std::string pre =
      sim::strf("ptl.n%u.p%u.", cfg_.id.nid, cfg_.id.pid);
  c_match_attempts_ = &reg.counter(pre + "match_attempts");
  c_match_hits_ = &reg.counter(pre + "match_hits");
  c_match_misses_ = &reg.counter(pre + "match_misses");
  h_eq_depth_ = &reg.histogram(pre + "eq_depth");
  h_match_probe_ = &reg.histogram(pre + "match_probe");
}

// -------------------------------------------------------------- NI ----

int Library::ni_init(const Limits& desired, Limits* actual) {
  for (const auto& me : mes_) {
    if (me.live) return PTL_NI_INVALID;
  }
  for (const auto& md : mds_) {
    if (md.live) return PTL_NI_INVALID;
  }
  for (const auto& eq : eqs_) {
    if (eq != nullptr) return PTL_NI_INVALID;
  }
  // Hard caps of this implementation.
  static constexpr Limits kMax{/*max_mes=*/65536, /*max_mds=*/65536,
                               /*max_eqs=*/1024, /*max_ac_index=*/64,
                               /*max_pt_index=*/256, /*max_me_list=*/65536};
  Limits got;
  got.max_mes = std::min(desired.max_mes, kMax.max_mes);
  got.max_mds = std::min(desired.max_mds, kMax.max_mds);
  got.max_eqs = std::min(desired.max_eqs, kMax.max_eqs);
  got.max_ac_index = std::min(desired.max_ac_index, kMax.max_ac_index);
  got.max_pt_index = std::min(desired.max_pt_index, kMax.max_pt_index);
  got.max_me_list = std::min(desired.max_me_list, kMax.max_me_list);
  cfg_.limits = got;
  pt_.assign(got.max_pt_index, PtEntry{});
  ac_.assign(got.max_ac_index, AcSlot{});
  eqs_.resize(got.max_eqs);
  eq_gens_.resize(got.max_eqs, 1);
  if (cfg_.permissive_ac0 && !ac_.empty()) {
    ac_[0].set = true;
    ac_[0].match_id = ProcessId{kNidAny, kPidAny};
    ac_[0].pt_index = kPtIndexAny;
  }
  if (actual != nullptr) *actual = got;
  return PTL_OK;
}

int Library::ni_fini() {
  for (std::uint32_t i = 0; i < mes_.size(); ++i) {
    if (mes_[i].live) unlink_me_internal(i);
  }
  for (std::uint32_t i = 0; i < mds_.size(); ++i) {
    if (mds_[i].live) kill_md(i);
  }
  for (std::uint32_t i = 0; i < eqs_.size(); ++i) {
    if (eqs_[i] != nullptr) {
      eqs_[i].reset();
      ++eq_gens_[i];
    }
  }
  ops_.clear();
  return PTL_OK;
}

// ------------------------------------------------------------------ EQ ----

int Library::eq_alloc(std::size_t count, EqHandle* out) {
  if (count == 0) return PTL_EQ_INVALID;
  for (std::uint32_t i = 0; i < eqs_.size(); ++i) {
    if (eqs_[i] == nullptr) {
      eqs_[i] = std::make_unique<EventQueue>(eng_, count);
      *out = EqHandle{i, eq_gens_[i]};
      return PTL_OK;
    }
  }
  return PTL_NO_SPACE;
}

int Library::eq_free(EqHandle eq) {
  if (eq_object(eq) == nullptr) return PTL_EQ_INVALID;
  eqs_[eq.idx].reset();
  ++eq_gens_[eq.idx];
  return PTL_OK;
}

int Library::eq_get(EqHandle eq, Event* out) {
  EventQueue* q = eq_object(eq);
  if (q == nullptr) return PTL_EQ_INVALID;
  const int rc = q->get(out);
  if (rc != PTL_EQ_EMPTY) {
    if (fault::InvariantChecker* chk = eng_.invariants()) {
      chk->on_eq_get(eq_probe_key(eq), out->sequence);
    }
  }
  return rc;
}

std::uint64_t Library::eq_probe_key(EqHandle eq) const {
  return (((static_cast<std::uint64_t>(cfg_.id.nid) << 16) | cfg_.id.pid)
          << 10) |
         eq.idx;
}

EventQueue* Library::eq_object(EqHandle eq) {
  if (!eq.valid() || eq.idx >= eqs_.size() || eqs_[eq.idx] == nullptr ||
      eq_gens_[eq.idx] != eq.gen) {
    return nullptr;
  }
  return eqs_[eq.idx].get();
}

// ------------------------------------------------------------------ ME ----

Library::MeRec* Library::me_deref(MeHandle h) {
  if (!h.valid() || h.idx >= mes_.size()) return nullptr;
  MeRec& me = mes_[h.idx];
  return (me.live && me.gen == h.gen) ? &me : nullptr;
}

int Library::me_attach(std::uint32_t pt_index, ProcessId match_id,
                       MatchBits mbits, MatchBits ibits, Unlink unlink,
                       InsPos pos, MeHandle* out) {
  if (pt_index >= pt_.size()) return PTL_PT_INDEX_INVALID;
  PtEntry& pt = pt_[pt_index];
  if (pt.length >= cfg_.limits.max_me_list) return PTL_ME_LIST_TOO_LONG;
  const std::uint32_t idx = alloc_me_slot();
  if (idx == kNone) return PTL_NO_SPACE;
  MeRec& me = mes_[idx];
  const std::uint32_t gen = me.gen;
  me = MeRec{};
  me.live = true;
  me.gen = gen;
  me.pt_index = pt_index;
  me.match_id = match_id;
  me.mbits = mbits;
  me.ibits = ibits;
  me.unlink = unlink;

  if (pos == InsPos::kBefore) {  // head of the match list
    me.next = pt.head;
    if (pt.head != kNone) mes_[pt.head].prev = idx;
    pt.head = idx;
    if (pt.tail == kNone) pt.tail = idx;
    assign_label_head(idx);
  } else {  // tail
    me.prev = pt.tail;
    if (pt.tail != kNone) mes_[pt.tail].next = idx;
    pt.tail = idx;
    if (pt.head == kNone) pt.head = idx;
    assign_label_tail(idx);
  }
  ++pt.length;
  index_link(idx);
  *out = MeHandle{idx, me.gen};
  return PTL_OK;
}

int Library::me_insert(MeHandle base, ProcessId match_id, MatchBits mbits,
                       MatchBits ibits, Unlink unlink, InsPos pos,
                       MeHandle* out) {
  MeRec* b = me_deref(base);
  if (b == nullptr) return PTL_ME_INVALID;
  PtEntry& pt = pt_[b->pt_index];
  if (pt.length >= cfg_.limits.max_me_list) return PTL_ME_LIST_TOO_LONG;
  const std::uint32_t idx = alloc_me_slot();
  if (idx == kNone) return PTL_NO_SPACE;
  b = me_deref(base);  // re-derive: alloc may have grown mes_
  MeRec& me = mes_[idx];
  const std::uint32_t gen = me.gen;
  me = MeRec{};
  me.live = true;
  me.gen = gen;
  me.pt_index = b->pt_index;
  me.match_id = match_id;
  me.mbits = mbits;
  me.ibits = ibits;
  me.unlink = unlink;

  const std::uint32_t bidx = base.idx;
  if (pos == InsPos::kBefore) {
    me.prev = mes_[bidx].prev;
    me.next = bidx;
    if (me.prev != kNone) {
      mes_[me.prev].next = idx;
    } else {
      pt.head = idx;
    }
    mes_[bidx].prev = idx;
  } else {
    me.next = mes_[bidx].next;
    me.prev = bidx;
    if (me.next != kNone) {
      mes_[me.next].prev = idx;
    } else {
      pt.tail = idx;
    }
    mes_[bidx].next = idx;
  }
  ++pt.length;
  assign_label_between(idx, me.prev, me.next);
  index_link(idx);
  *out = MeHandle{idx, me.gen};
  return PTL_OK;
}

void Library::unlink_me_internal(std::uint32_t idx) {
  index_unlink(idx);
  MeRec& me = mes_[idx];
  PtEntry& pt = pt_[me.pt_index];
  if (me.prev != kNone) {
    mes_[me.prev].next = me.next;
  } else {
    pt.head = me.next;
  }
  if (me.next != kNone) {
    mes_[me.next].prev = me.prev;
  } else {
    pt.tail = me.prev;
  }
  --pt.length;
  me.live = false;
  ++me.gen;
  me.next = me.prev = kNone;
  me_free_.push_back(idx);
}

int Library::me_unlink(MeHandle meh) {
  MeRec* me = me_deref(meh);
  if (me == nullptr) return PTL_ME_INVALID;
  if (me->md.valid()) {
    MdRec* md = md_deref(me->md);
    if (md != nullptr) {
      if (md->pending_ops > 0) return PTL_ME_IN_USE;
      kill_md(me->md.idx);
    }
  }
  unlink_me_internal(meh.idx);
  return PTL_OK;
}

std::uint32_t Library::alloc_me_slot() {
  if (!me_free_.empty()) {
    const std::uint32_t idx = me_free_.back();
    me_free_.pop_back();
    return idx;
  }
  if (mes_.size() >= cfg_.limits.max_mes) return kNone;
  mes_.emplace_back();
  return static_cast<std::uint32_t>(mes_.size() - 1);
}

std::uint32_t Library::alloc_md_slot() {
  if (!md_free_.empty()) {
    const std::uint32_t idx = md_free_.back();
    md_free_.pop_back();
    return idx;
  }
  if (mds_.size() >= cfg_.limits.max_mds) return kNone;
  mds_.emplace_back();
  return static_cast<std::uint32_t>(mds_.size() - 1);
}

void Library::kill_md(std::uint32_t idx) {
  MdRec& md = mds_[idx];
  md.live = false;
  ++md.gen;
  md_free_.push_back(idx);
}

// ------------------------------------------------------------------ MD ----

Library::MdRec* Library::md_deref(MdHandle h) {
  if (!h.valid() || h.idx >= mds_.size()) return nullptr;
  MdRec& md = mds_[h.idx];
  return (md.live && md.gen == h.gen) ? &md : nullptr;
}

bool Library::md_active(const MdRec& md) const {
  return md.live && !md.inactive && md.threshold != 0;
}

namespace {
/// Validates and canonicalizes an MD description.  For IOVEC descriptors
/// the total length is computed from the segments.
int validate_md_desc(MdDesc& d, const Memory& mem) {
  if ((d.options & PTL_MD_IOVEC) != 0) {
    if (d.iovecs.empty() || d.iovecs.size() > 64) return PTL_MD_ILLEGAL;
    std::uint64_t total = 0;
    for (const IoVec& v : d.iovecs) {
      if (v.length > 0 && !mem.valid(v.start, v.length)) return PTL_SEGV;
      total += v.length;
    }
    if (total > 0xFFFFFFFFull) return PTL_MD_ILLEGAL;
    d.length = static_cast<std::uint32_t>(total);
  } else {
    if (!d.iovecs.empty()) return PTL_MD_ILLEGAL;  // flag/field mismatch
    if (d.length > 0 && !mem.valid(d.start, d.length)) return PTL_SEGV;
  }
  if ((d.options & PTL_MD_MAX_SIZE) != 0 && d.max_size == 0) {
    return PTL_MD_ILLEGAL;
  }
  if (d.threshold < PTL_MD_THRESH_INF) return PTL_MD_ILLEGAL;
  return PTL_OK;
}
}  // namespace

IoVecList Library::md_slice(const MdDesc& desc, std::uint64_t offset,
                            std::uint32_t len) {
  IoVecList out;
  if (len == 0) return out;
  if ((desc.options & PTL_MD_IOVEC) == 0) {
    out.push_back(IoVec{desc.start + offset, len});
    return out;
  }
  std::uint64_t pos = 0;
  std::uint32_t remaining = len;
  for (const IoVec& v : desc.iovecs) {
    if (remaining == 0) break;
    const std::uint64_t seg_end = pos + v.length;
    if (offset < seg_end) {
      const std::uint64_t within = offset > pos ? offset - pos : 0;
      const std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(v.length - within, remaining));
      out.push_back(IoVec{v.start + within, take});
      remaining -= take;
      offset += take;
    }
    pos = seg_end;
  }
  return out;
}

int Library::md_attach(MeHandle meh, MdDesc desc, Unlink unlink_op,
                       MdHandle* out) {
  MeRec* me = me_deref(meh);
  if (me == nullptr) return PTL_ME_INVALID;
  if (me->md.valid() && md_deref(me->md) != nullptr) return PTL_ME_IN_USE;
  if (int rc = validate_md_desc(desc, mem_); rc != PTL_OK) return rc;
  // (validate_md_desc canonicalized desc.length for IOVEC descriptors)
  if (desc.eq.valid() && eq_object(desc.eq) == nullptr) return PTL_EQ_INVALID;

  const std::uint32_t idx = alloc_md_slot();
  if (idx == kNone) return PTL_NO_SPACE;
  me = me_deref(meh);  // re-derive: alloc may have grown mds_
  MdRec& md = mds_[idx];
  const std::uint32_t gen = md.gen;
  md = MdRec{};
  md.live = true;
  md.gen = gen;
  md.desc = desc;
  md.unlink_op = unlink_op;
  md.me = meh;
  md.threshold = desc.threshold;
  me->md = MdHandle{idx, md.gen};
  *out = me->md;
  return PTL_OK;
}

int Library::md_bind(MdDesc desc, Unlink unlink_op, MdHandle* out) {
  if (int rc = validate_md_desc(desc, mem_); rc != PTL_OK) return rc;
  if (desc.eq.valid() && eq_object(desc.eq) == nullptr) return PTL_EQ_INVALID;
  const std::uint32_t idx = alloc_md_slot();
  if (idx == kNone) return PTL_NO_SPACE;
  MdRec& md = mds_[idx];
  const std::uint32_t gen = md.gen;
  md = MdRec{};
  md.live = true;
  md.gen = gen;
  md.desc = desc;
  md.unlink_op = unlink_op;
  md.threshold = desc.threshold;
  *out = MdHandle{idx, md.gen};
  return PTL_OK;
}

int Library::md_unlink(MdHandle mdh) {
  MdRec* md = md_deref(mdh);
  if (md == nullptr) return PTL_MD_INVALID;
  if (md->pending_ops > 0) return PTL_MD_IN_USE;
  if (md->me.valid()) {
    if (MeRec* me = me_deref(md->me)) me->md = MdHandle{};
  }
  kill_md(mdh.idx);
  return PTL_OK;
}

int Library::md_update(MdHandle mdh, MdDesc* old_desc, const MdDesc* new_desc,
                       EqHandle test_eq) {
  MdRec* md = md_deref(mdh);
  if (md == nullptr) return PTL_MD_INVALID;
  if (old_desc != nullptr) *old_desc = md->desc;
  if (new_desc == nullptr) return PTL_OK;  // pure query
  if (test_eq.valid()) {
    EventQueue* q = eq_object(test_eq);
    if (q == nullptr) return PTL_EQ_INVALID;
    if (!q->empty()) return PTL_MD_NO_UPDATE;
  }
  if (md->pending_ops > 0) return PTL_MD_NO_UPDATE;
  MdDesc canon = *new_desc;
  if (int rc = validate_md_desc(canon, mem_); rc != PTL_OK) return rc;
  md->desc = canon;
  md->threshold = canon.threshold;
  md->local_offset = 0;
  md->inactive = false;
  return PTL_OK;
}

// ------------------------------------------------------------------ AC ----

int Library::ac_entry(std::uint32_t ac_index, ProcessId match_id,
                      std::uint32_t pt_index) {
  if (ac_index >= ac_.size()) return PTL_AC_INDEX_INVALID;
  if (pt_index != kPtIndexAny && pt_index >= pt_.size()) {
    return PTL_PT_INDEX_INVALID;
  }
  ac_[ac_index] = AcSlot{true, match_id, pt_index};
  return PTL_OK;
}

bool Library::ac_check(const WireHeader& hdr) {
  if (hdr.ac_index >= ac_.size() || !ac_[hdr.ac_index].set) {
    ++perm_violations_;
    return false;
  }
  const AcSlot& ac = ac_[hdr.ac_index];
  const bool nid_ok = ac.match_id.nid == kNidAny ||
                      ac.match_id.nid == hdr.src_nid;
  const bool pid_ok = ac.match_id.pid == kPidAny ||
                      ac.match_id.pid == hdr.src_pid;
  const bool pt_ok = ac.pt_index == kPtIndexAny || ac.pt_index == hdr.pt_index;
  if (!nid_ok || !pid_ok || !pt_ok) {
    ++perm_violations_;
    return false;
  }
  return true;
}

// ------------------------------------------------------------ matching ----

bool Library::me_matches(const MeRec& me, const WireHeader& hdr) {
  const bool nid_ok =
      me.match_id.nid == kNidAny || me.match_id.nid == hdr.src_nid;
  const bool pid_ok =
      me.match_id.pid == kPidAny || me.match_id.pid == hdr.src_pid;
  const bool bits_ok = ((me.mbits ^ hdr.match_bits) & ~me.ibits) == 0;
  return nid_ok && pid_ok && bits_ok;
}

bool Library::me_accepts(std::uint32_t idx, const WireHeader& hdr,
                         bool is_get, std::uint64_t* offset_out,
                         std::uint32_t* mlength_out) {
  MeRec& me = mes_[idx];
  if (!me_matches(me, hdr)) return false;
  MdRec* md = me.md.valid() ? md_deref(me.md) : nullptr;
  if (md == nullptr || !md_active(*md)) return false;
  const unsigned need = is_get ? PTL_MD_OP_GET : PTL_MD_OP_PUT;
  if ((md->desc.options & need) == 0) return false;

  const bool manage_remote = (md->desc.options & PTL_MD_MANAGE_REMOTE) != 0;
  const std::uint64_t offset =
      manage_remote ? hdr.remote_offset : md->local_offset;
  std::uint32_t mlength;
  if (hdr.length == 0) {
    // Zero-length operations need no buffer space; they match anywhere.
    mlength = 0;
  } else if (offset >= md->desc.length) {
    if ((md->desc.options & PTL_MD_TRUNCATE) == 0) return false;
    mlength = 0;
  } else {
    const std::uint64_t space = md->desc.length - offset;
    if (hdr.length > space) {
      if ((md->desc.options & PTL_MD_TRUNCATE) == 0) return false;
      mlength = static_cast<std::uint32_t>(space);
    } else {
      mlength = hdr.length;
    }
  }
  *offset_out = offset;
  *mlength_out = mlength;
  return true;
}

std::uint32_t Library::match_walk_linear(const WireHeader& hdr, bool is_get,
                                         std::uint64_t* offset_out,
                                         std::uint32_t* mlength_out,
                                         std::size_t* walked_out) {
  std::size_t walked = 0;
  for (std::uint32_t idx = pt_[hdr.pt_index].head; idx != kNone;
       idx = mes_[idx].next) {
    ++walked;
    if (me_accepts(idx, hdr, is_get, offset_out, mlength_out)) {
      *walked_out = walked;
      return idx;
    }
  }
  *walked_out = walked;
  return kNone;
}

std::uint32_t Library::match_walk_indexed(const WireHeader& hdr, bool is_get,
                                          std::uint64_t* offset_out,
                                          std::uint32_t* mlength_out,
                                          std::size_t* walked_out) {
  PtEntry& pt = pt_[hdr.pt_index];
  std::uint32_t e = kNone;  // exact-bucket cursor
  if (const Chain* c = pt.buckets.find(hdr.match_bits)) e = c->head;
  std::uint32_t w = pt.wild.head;  // wildcard-chain cursor
  std::size_t probes = 0;
  std::uint32_t hit = kNone;
  // Label-ordered merge of the two chains visits exactly the MEs whose
  // bits can match hdr, in main-list order; every other ME would have
  // been rejected by me_matches in the linear walk anyway.
  while (e != kNone || w != kNone) {
    std::uint32_t cand;
    if (w == kNone || (e != kNone && mes_[e].label < mes_[w].label)) {
      cand = e;
      e = mes_[e].inext;
    } else {
      cand = w;
      w = mes_[w].inext;
    }
    ++probes;
    if (me_accepts(cand, hdr, is_get, offset_out, mlength_out)) {
      hit = cand;
      break;
    }
  }
  if (eng_.metrics().sampling()) h_match_probe_->record(probes);
  if (hit == kNone) {
    // The linear walk would have examined (and rejected) every entry.
    *walked_out = pt.length;
    return kNone;
  }
  // Report the linear walk's entries_walked — the hit's 1-based position
  // in the main list — so the simulated per-entry match cost charged by
  // the agent/firmware is byte-identical to the reference.  A pointer
  // chase over prev links is far cheaper than the full per-entry
  // acceptance test the linear walk runs.
  std::size_t pos = 1;
  for (std::uint32_t p = mes_[hit].prev; p != kNone; p = mes_[p].prev) {
    ++pos;
  }
  *walked_out = pos;
  return hit;
}

void Library::shadow_check(const WireHeader& hdr, bool is_get,
                           std::uint32_t ref, std::uint32_t got,
                           std::uint64_t ref_off, std::uint64_t got_off,
                           std::uint32_t ref_len, std::uint32_t got_len,
                           std::size_t ref_walked, std::size_t got_walked) {
  const bool agree =
      ref == got && ref_walked == got_walked &&
      (ref == kNone || (ref_off == got_off && ref_len == got_len));
  if (agree) return;
  ++shadow_mismatches_;
  if (shadow_report_.empty()) {
    shadow_report_ = sim::strf(
        "shadow matcher mismatch: ni=(%u,%u) pt=%u bits=%llx len=%u %s | "
        "linear: me=%d off=%llu mlen=%u walked=%zu | "
        "indexed: me=%d off=%llu mlen=%u walked=%zu",
        cfg_.id.nid, cfg_.id.pid, hdr.pt_index,
        static_cast<unsigned long long>(hdr.match_bits), hdr.length,
        is_get ? "get" : "put", static_cast<int>(ref),
        static_cast<unsigned long long>(ref_off), ref_len, ref_walked,
        static_cast<int>(got),
        static_cast<unsigned long long>(got_off), got_len, got_walked);
  }
  if (shadow_abort_) {
    std::fputs(shadow_report_.c_str(), stderr);
    std::fputc('\n', stderr);
    std::abort();
  }
}

std::uint32_t Library::match_walk(const WireHeader& hdr, bool is_get,
                                  std::uint64_t* offset_out,
                                  std::uint32_t* mlength_out,
                                  std::size_t* walked_out) {
  if (hdr.pt_index >= pt_.size()) {
    *walked_out = 0;
    return kNone;
  }
  std::uint32_t idx;
  switch (cfg_.match_mode) {
    case MatchMode::kLinear:
      idx = match_walk_linear(hdr, is_get, offset_out, mlength_out,
                              walked_out);
      break;
    case MatchMode::kIndexed:
      idx = match_walk_indexed(hdr, is_get, offset_out, mlength_out,
                               walked_out);
      break;
    case MatchMode::kShadow:
    default: {
      // Order matters: the linear walk runs first so the indexed walk's
      // sampled match_probe histogram never observes a diverged state.
      std::uint64_t ref_off = 0, got_off = 0;
      std::uint32_t ref_len = 0, got_len = 0;
      std::size_t ref_walked = 0, got_walked = 0;
      const std::uint32_t ref = match_walk_linear(
          hdr, is_get, &ref_off, &ref_len, &ref_walked);
      const std::uint32_t got = match_walk_indexed(
          hdr, is_get, &got_off, &got_len, &got_walked);
      shadow_check(hdr, is_get, ref, got, ref_off, got_off, ref_len,
                   got_len, ref_walked, got_walked);
      *offset_out = ref_off;
      *mlength_out = ref_len;
      *walked_out = ref_walked;
      idx = ref;
      break;
    }
  }
  c_match_attempts_->add(*walked_out);
  if (idx != kNone) {
    c_match_hits_->add();
  } else {
    c_match_misses_->add();
  }
  return idx;
}

// ------------------------------------------------- match-list index ----
//
// Order-maintenance labels: every ME carries a 64-bit label strictly
// increasing along its portal's main match list.  Appends and head
// inserts step by kGap; me_insert takes the midpoint of its neighbors;
// when a gap is exhausted (or the ends over/underflow) the whole portal
// relabels in one O(n) pass — amortized free at kGap = 2^20.

namespace {
constexpr std::uint64_t kLabelBase = 1ull << 62;
constexpr std::uint64_t kLabelGap = 1ull << 20;
constexpr std::uint64_t kLabelMax = ~0ull - kLabelGap;
}  // namespace

Library::Chain& Library::chain_of(MeRec& me) {
  PtEntry& pt = pt_[me.pt_index];
  if (me.ibits != 0) return pt.wild;
  Chain* c = pt.buckets.find(me.mbits);
  if (c == nullptr) c = &pt.buckets.put(me.mbits, Chain{});
  return *c;
}

void Library::index_link(std::uint32_t idx) {
  MeRec& me = mes_[idx];
  Chain& c = chain_of(me);
  // Chains stay label-sorted.  Both ends are O(1) (appends and head
  // inserts — the common cases); a mid-list me_insert scans from the
  // tail.
  if (c.head == kNone) {
    c.head = c.tail = idx;
    me.inext = me.iprev = kNone;
    return;
  }
  if (me.label < mes_[c.head].label) {  // new chain head
    me.inext = c.head;
    me.iprev = kNone;
    mes_[c.head].iprev = idx;
    c.head = idx;
    return;
  }
  std::uint32_t after = c.tail;
  while (mes_[after].label > me.label) after = mes_[after].iprev;
  me.iprev = after;
  me.inext = mes_[after].inext;
  if (me.inext != kNone) {
    mes_[me.inext].iprev = idx;
  } else {
    c.tail = idx;
  }
  mes_[after].inext = idx;
}

void Library::index_unlink(std::uint32_t idx) {
  MeRec& me = mes_[idx];
  Chain& c = chain_of(me);
  if (me.iprev != kNone) {
    mes_[me.iprev].inext = me.inext;
  } else {
    c.head = me.inext;
  }
  if (me.inext != kNone) {
    mes_[me.inext].iprev = me.iprev;
  } else {
    c.tail = me.iprev;
  }
  me.inext = me.iprev = kNone;
  // Retire empty exact buckets so job-scoped match-bit churn cannot grow
  // the bucket table without bound.
  if (me.ibits == 0 && c.head == kNone) pt_[me.pt_index].buckets.erase(me.mbits);
}

void Library::assign_label_tail(std::uint32_t idx) {
  MeRec& me = mes_[idx];
  const std::uint32_t prev = me.prev;
  if (prev == kNone) {
    me.label = kLabelBase;
    return;
  }
  if (mes_[prev].label >= kLabelMax) {
    relabel_pt(pt_[me.pt_index]);
    return;
  }
  me.label = mes_[prev].label + kLabelGap;
}

void Library::assign_label_head(std::uint32_t idx) {
  MeRec& me = mes_[idx];
  const std::uint32_t next = me.next;
  if (next == kNone) {
    me.label = kLabelBase;
    return;
  }
  if (mes_[next].label <= kLabelGap) {
    relabel_pt(pt_[me.pt_index]);
    return;
  }
  me.label = mes_[next].label - kLabelGap;
}

void Library::assign_label_between(std::uint32_t idx, std::uint32_t lo_idx,
                                   std::uint32_t hi_idx) {
  if (lo_idx == kNone) {
    assign_label_head(idx);
    return;
  }
  if (hi_idx == kNone) {
    assign_label_tail(idx);
    return;
  }
  const std::uint64_t lo = mes_[lo_idx].label;
  const std::uint64_t hi = mes_[hi_idx].label;
  const std::uint64_t mid = lo + (hi - lo) / 2;
  if (mid == lo) {  // gap exhausted between the neighbors
    relabel_pt(pt_[mes_[idx].pt_index]);
    return;
  }
  mes_[idx].label = mid;
}

void Library::relabel_pt(PtEntry& pt) {
  // The new entry is already on the main list, so one pass renumbers
  // everything — including it — with fresh kLabelGap spacing.  Chains
  // remain label-sorted because relabeling preserves main-list order and
  // each chain is a subsequence of the main list.
  std::uint64_t label = kLabelBase;
  for (std::uint32_t i = pt.head; i != kNone; i = mes_[i].next) {
    mes_[i].label = label;
    label += kLabelGap;
  }
}

void Library::md_consume(std::uint32_t me_idx, MdRec& md, std::uint64_t offset,
                         std::uint32_t mlength, bool manage_remote) {
  (void)me_idx;
  if (!manage_remote) md.local_offset = offset + mlength;
  if (md.threshold != PTL_MD_THRESH_INF && md.threshold > 0) {
    --md.threshold;
    if (md.threshold == 0) md.inactive = true;
  }
  // PTL_MD_MAX_SIZE: retire the MD once it can no longer accept a
  // maximum-sized message (the Lustre buffer-carousel idiom).
  if ((md.desc.options & PTL_MD_MAX_SIZE) != 0 &&
      md.desc.length - md.local_offset < md.desc.max_size) {
    md.inactive = true;
  }
}

// ------------------------------------------------------------- events ----

Event Library::make_event(const OpRec& op, EventType type) const {
  Event ev;
  ev.type = type;
  ev.initiator = op.peer;
  ev.pt_index = op.pt_index;
  ev.match_bits = op.mbits;
  ev.rlength = op.rlength;
  ev.mlength = op.mlength;
  ev.offset = op.offset;
  ev.md_handle = op.md;
  ev.hdr_data = op.hdr_data;
  ev.link = op.link;
  return ev;
}

void Library::post_event(const MdRec& md, Event ev) {
  if (!md.desc.eq.valid()) return;
  if ((md.desc.options & PTL_MD_EVENT_START_DISABLE) != 0 &&
      (ev.type == EventType::kPutStart || ev.type == EventType::kGetStart ||
       ev.type == EventType::kReplyStart ||
       ev.type == EventType::kSendStart)) {
    return;
  }
  if ((md.desc.options & PTL_MD_EVENT_END_DISABLE) != 0 &&
      (ev.type == EventType::kPutEnd || ev.type == EventType::kGetEnd ||
       ev.type == EventType::kReplyEnd || ev.type == EventType::kSendEnd)) {
    return;
  }
  ev.md = md.desc;
  ev.user_ptr = md.desc.user_ptr;
  post_event_to(md.desc.eq, ev);
}

void Library::post_event_to(EqHandle eq, Event ev) {
  if (EventQueue* q = eq_object(eq)) {
    const std::uint64_t seq = q->post(ev);
    if (eng_.metrics().sampling()) h_eq_depth_->record(q->size());
    if (fault::InvariantChecker* chk = eng_.invariants()) {
      chk->on_eq_post(eq_probe_key(eq), seq);
    }
  }
}

void Library::auto_unlink(MdHandle mdh) {
  MdRec* md = md_deref(mdh);
  if (md == nullptr) return;
  Event ev;
  ev.type = EventType::kUnlink;
  ev.md_handle = mdh;
  ev.md = md->desc;
  ev.user_ptr = md->desc.user_ptr;
  post_event(*md, ev);
  if (md->me.valid()) {
    const std::uint32_t me_idx = md->me.idx;
    if (MeRec* me = me_deref(md->me)) {
      me->md = MdHandle{};
      // PTL_UNLINK on the ME: it goes away with its MD.
      if (me->unlink == Unlink::kUnlink) unlink_me_internal(me_idx);
    }
  }
  kill_md(mdh.idx);
}

void Library::release_op_md(MdHandle mdh) {
  MdRec* md = md_deref(mdh);
  if (md == nullptr) return;
  assert(md->pending_ops > 0);
  --md->pending_ops;
  if (md->pending_ops == 0 && md->unlink_when_idle) {
    auto_unlink(mdh);
  }
}

// ----------------------------------------------------------- initiation ----

int Library::start_outgoing(OpRec::Kind kind, Nal::TxKind txkind,
                            MdHandle mdh, std::uint64_t offset,
                            std::uint32_t len, AckReq ack, ProcessId target,
                            std::uint32_t pt_index, std::uint32_t ac_index,
                            MatchBits mbits, std::uint64_t remote_offset,
                            std::uint64_t hdr_data, bool atomic) {
  MdRec* md = md_deref(mdh);
  if (md == nullptr || !md_active(*md)) return PTL_MD_INVALID;
  if (offset + len > md->desc.length) return PTL_MD_ILLEGAL;
  if (pt_index >= cfg_.limits.max_pt_index) return PTL_PT_INDEX_INVALID;

  // Consume one operation on the initiating MD.
  if (md->threshold != PTL_MD_THRESH_INF) {
    --md->threshold;
    if (md->threshold == 0) md->inactive = true;
  }
  ++md->pending_ops;
  if (md->inactive && md->unlink_op == Unlink::kUnlink) {
    md->unlink_when_idle = true;
  }

  const std::uint64_t token = next_token_++;
  OpRec op;
  op.kind = kind;
  op.md = mdh;
  op.link = next_link_++;
  op.pt_index = pt_index;
  op.mbits = mbits;
  op.peer = target;
  op.rlength = len;
  op.mlength = len;
  op.offset = offset;
  op.hdr_data = hdr_data;
  op.ack = ack;

  WireHeader hdr;
  hdr.op = (kind == OpRec::Kind::kGetOut)
               ? WireOp::kGet
               : (atomic ? WireOp::kAtomicSum : WireOp::kPut);
  hdr.ack_req = ack;
  hdr.src_nid = cfg_.id.nid;
  hdr.src_pid = cfg_.id.pid;
  hdr.dst_pid = target.pid;
  hdr.pt_index = static_cast<std::uint8_t>(pt_index);
  hdr.ac_index = static_cast<std::uint8_t>(ac_index);
  hdr.match_bits = mbits;
  hdr.remote_offset = remote_offset;
  hdr.length = len;
  hdr.hdr_data = hdr_data;
  token_into(hdr, token);

  // SEND_START for puts: the transmit has been handed to the network stack.
  if (kind == OpRec::Kind::kPutOut) {
    post_event(*md, make_event(op, EventType::kSendStart));
  }
  ops_.put(token, op);
  ++msgs_sent_;
  if (fault::InvariantChecker* chk = eng_.invariants()) {
    chk->initiator_open(cfg_.id.nid, cfg_.id.pid, token);
  }
  // Under fault injection a put's ack or a get's reply can be lost for
  // good (peer death after go-back-n gives up).  Arm a timeout that
  // surfaces the loss as a PTL_NI_FAIL_DROPPED event instead of leaving
  // the initiator hanging.  Only armed when an injector is installed, so
  // the spec semantics (an ACK that never comes simply never fires) are
  // untouched in fault-free runs.
  if (fault::Injector* inj = eng_.fault_injector()) {
    const bool awaits_wire = kind == OpRec::Kind::kGetOut ||
                             (kind == OpRec::Kind::kPutOut &&
                              ack == AckReq::kAck);
    if (awaits_wire) {
      // The timeout is portals-library deferred work no matter which layer
      // the post came through; retag for the one schedule, then restore.
      const telemetry::Cat prev =
          eng_.tag_category(telemetry::Cat::kPortals);
      eng_.schedule_after(
          sim::Time::ns(
              static_cast<std::int64_t>(inj->plan().ack_timeout_ns)),
          [this, token] { ack_timeout(token); });
      eng_.tag_category(prev);
    }
  }

  IoVecList payload;
  if (kind == OpRec::Kind::kPutOut) {
    payload = md_slice(md->desc, offset, len);
  }
  return nal_.send(txkind, target.nid, hdr, std::move(payload), token);
}

int Library::put(MdHandle md, AckReq ack, ProcessId target,
                 std::uint32_t pt_index, std::uint32_t ac_index,
                 MatchBits mbits, std::uint64_t remote_offset,
                 std::uint64_t hdr_data) {
  MdRec* rec = md_deref(md);
  if (rec == nullptr) return PTL_MD_INVALID;
  return put_region(md, 0, rec->desc.length, ack, target, pt_index, ac_index,
                    mbits, remote_offset, hdr_data);
}

int Library::put_region(MdHandle md, std::uint64_t offset, std::uint32_t len,
                        AckReq ack, ProcessId target, std::uint32_t pt_index,
                        std::uint32_t ac_index, MatchBits mbits,
                        std::uint64_t remote_offset, std::uint64_t hdr_data) {
  return start_outgoing(OpRec::Kind::kPutOut, Nal::TxKind::kPut, md, offset,
                        len, ack, target, pt_index, ac_index, mbits,
                        remote_offset, hdr_data);
}

int Library::put_atomic(MdHandle md, AckReq ack, ProcessId target,
                        std::uint32_t pt_index, std::uint32_t ac_index,
                        MatchBits mbits, std::uint64_t remote_offset,
                        std::uint64_t hdr_data) {
  MdRec* rec = md_deref(md);
  if (rec == nullptr) return PTL_MD_INVALID;
  return put_atomic_region(md, 0, rec->desc.length, ack, target, pt_index,
                           ac_index, mbits, remote_offset, hdr_data);
}

int Library::put_atomic_region(MdHandle md, std::uint64_t offset,
                               std::uint32_t len, AckReq ack,
                               ProcessId target, std::uint32_t pt_index,
                               std::uint32_t ac_index, MatchBits mbits,
                               std::uint64_t remote_offset,
                               std::uint64_t hdr_data) {
  return start_outgoing(OpRec::Kind::kPutOut, Nal::TxKind::kPut, md, offset,
                        len, ack, target, pt_index, ac_index, mbits,
                        remote_offset, hdr_data, /*atomic=*/true);
}

int Library::md_segments(MdHandle mdh, std::uint64_t offset,
                         std::uint32_t len, IoVecList* out) {
  MdRec* md = md_deref(mdh);
  if (md == nullptr) return PTL_MD_INVALID;
  if (offset + len > md->desc.length) return PTL_MD_ILLEGAL;
  *out = md_slice(md->desc, offset, len);
  return PTL_OK;
}

int Library::get(MdHandle md, ProcessId target, std::uint32_t pt_index,
                 std::uint32_t ac_index, MatchBits mbits,
                 std::uint64_t remote_offset) {
  MdRec* rec = md_deref(md);
  if (rec == nullptr) return PTL_MD_INVALID;
  return get_region(md, 0, rec->desc.length, target, pt_index, ac_index,
                    mbits, remote_offset);
}

int Library::get_region(MdHandle md, std::uint64_t offset, std::uint32_t len,
                        ProcessId target, std::uint32_t pt_index,
                        std::uint32_t ac_index, MatchBits mbits,
                        std::uint64_t remote_offset) {
  return start_outgoing(OpRec::Kind::kGetOut, Nal::TxKind::kGetRequest, md,
                        offset, len, AckReq::kNone, target, pt_index,
                        ac_index, mbits, remote_offset, 0);
}

// ------------------------------------------------------------ wire side ----

Library::RxDecision Library::on_put_header(const WireHeader& hdr) {
  ++msgs_received_;
  RxDecision d;
  if (!ac_check(hdr)) return d;
  std::uint64_t offset = 0;
  std::uint32_t mlength = 0;
  const std::uint32_t me_idx =
      match_walk(hdr, /*is_get=*/false, &offset, &mlength, &d.entries_walked);
  if (me_idx == kNone) {
    ++drops_;
    return d;
  }
  MeRec& me = mes_[me_idx];
  const MdHandle mdh = me.md;
  MdRec& md = *md_deref(mdh);

  const std::uint64_t token = next_token_++;
  OpRec op;
  op.kind = OpRec::Kind::kPutIn;
  op.md = mdh;
  op.link = next_link_++;
  op.pt_index = hdr.pt_index;
  op.mbits = hdr.match_bits;
  op.peer = ProcessId{hdr.src_nid, hdr.src_pid};
  op.rlength = hdr.length;
  op.mlength = mlength;
  op.offset = offset;
  op.hdr_data = hdr.hdr_data;
  op.ack = hdr.ack_req;
  if (hdr.ack_req == AckReq::kAck &&
      (md.desc.options & PTL_MD_ACK_DISABLE) == 0) {
    WireHeader ack;
    ack.op = WireOp::kAck;
    ack.src_nid = cfg_.id.nid;
    ack.src_pid = cfg_.id.pid;
    ack.dst_pid = hdr.src_pid;
    ack.pt_index = hdr.pt_index;
    ack.match_bits = hdr.match_bits;
    ack.length = mlength;  // mlength reported back to the initiator
    ack.md_id = hdr.md_id;
    ack.md_gen = hdr.md_gen;
    op.ack_hdr = ack;
  }

  ++md.pending_ops;
  md_consume(me_idx, md, offset, mlength,
             (md.desc.options & PTL_MD_MANAGE_REMOTE) != 0);
  if (md.inactive && md.unlink_op == Unlink::kUnlink) {
    md.unlink_when_idle = true;
  }

  post_event(md, make_event(op, EventType::kPutStart));
  ops_.put(token, op);
  if (fault::InvariantChecker* chk = eng_.invariants()) {
    chk->target_accepted(cfg_.id.nid, cfg_.id.pid, token);
  }

  d.deliver = true;
  d.mlength = mlength;
  d.segments = md_slice(md.desc, offset, mlength);
  d.token = token;
  if ((md.desc.options & PTL_MD_EVENT_CT_PUT) != 0) d.ct = md.desc.ct;
  d.eqless = !md.desc.eq.valid();
  return d;
}

Library::RxDecision Library::on_reply_header(const WireHeader& hdr) {
  RxDecision d;
  const std::uint64_t token = token_of(hdr);
  OpRec* op_p = ops_.find(token);
  if (op_p == nullptr || op_p->kind != OpRec::Kind::kGetOut) {
    ++drops_;
    return d;
  }
  OpRec& op = *op_p;
  MdRec* md = md_deref(op.md);
  if (md == nullptr) {
    ops_.erase(token);
    ++drops_;
    return d;
  }
  op.kind = OpRec::Kind::kReplyIn;
  op.mlength = std::min<std::uint64_t>(hdr.length, op.rlength);
  post_event(*md, make_event(op, EventType::kReplyStart));
  if (fault::InvariantChecker* chk = eng_.invariants()) {
    chk->target_accepted(cfg_.id.nid, cfg_.id.pid, token);
  }
  d.deliver = true;
  d.mlength = static_cast<std::uint32_t>(op.mlength);
  d.segments = md_slice(md->desc, op.offset,
                        static_cast<std::uint32_t>(op.mlength));
  d.token = token;
  return d;
}

std::optional<WireHeader> Library::deposited(std::uint64_t token) {
  OpRec* op_p = ops_.find(token);
  if (op_p == nullptr) return std::nullopt;
  OpRec op = *op_p;
  ops_.erase(token);
  std::optional<WireHeader> ack;
  if (MdRec* md = md_deref(op.md)) {
    if (op.kind == OpRec::Kind::kPutIn) {
      post_event(*md, make_event(op, EventType::kPutEnd));
      if (op.ack_hdr.op == WireOp::kAck) ack = op.ack_hdr;
    } else if (op.kind == OpRec::Kind::kReplyIn) {
      post_event(*md, make_event(op, EventType::kReplyEnd));
    }
  }
  release_op_md(op.md);
  if (fault::InvariantChecker* chk = eng_.invariants()) {
    chk->target_delivered(cfg_.id.nid, cfg_.id.pid, token);
    // A deposited reply also resolves the original get.
    if (op.kind == OpRec::Kind::kReplyIn) {
      chk->initiator_done(cfg_.id.nid, cfg_.id.pid, token);
    }
  }
  return ack;
}

void Library::rx_dropped(std::uint64_t token) {
  OpRec* op_p = ops_.find(token);
  if (op_p == nullptr) return;
  const OpRec op = *op_p;
  ops_.erase(token);
  ++drops_;
  if (MdRec* md = md_deref(op.md)) {
    Event ev = make_event(op, op.kind == OpRec::Kind::kReplyIn
                                  ? EventType::kReplyEnd
                                  : EventType::kPutEnd);
    ev.ni_fail = PTL_NI_FAIL_DROPPED;
    post_event(*md, ev);
  }
  release_op_md(op.md);
  if (fault::InvariantChecker* chk = eng_.invariants()) {
    chk->target_failed(cfg_.id.nid, cfg_.id.pid, token);
    if (op.kind == OpRec::Kind::kReplyIn) {
      chk->initiator_done(cfg_.id.nid, cfg_.id.pid, token);
    }
  }
}

Library::GetDecision Library::on_get_header(const WireHeader& hdr) {
  ++msgs_received_;
  GetDecision d;
  if (!ac_check(hdr)) return d;
  std::uint64_t offset = 0;
  std::uint32_t mlength = 0;
  const std::uint32_t me_idx =
      match_walk(hdr, /*is_get=*/true, &offset, &mlength, &d.entries_walked);
  if (me_idx == kNone) {
    ++drops_;
    return d;
  }
  MeRec& me = mes_[me_idx];
  const MdHandle mdh = me.md;
  MdRec& md = *md_deref(mdh);

  const std::uint64_t token = next_token_++;
  OpRec op;
  op.kind = OpRec::Kind::kGetIn;
  op.md = mdh;
  op.link = next_link_++;
  op.pt_index = hdr.pt_index;
  op.mbits = hdr.match_bits;
  op.peer = ProcessId{hdr.src_nid, hdr.src_pid};
  op.rlength = hdr.length;
  op.mlength = mlength;
  op.offset = offset;

  ++md.pending_ops;
  md_consume(me_idx, md, offset, mlength,
             (md.desc.options & PTL_MD_MANAGE_REMOTE) != 0);
  if (md.inactive && md.unlink_op == Unlink::kUnlink) {
    md.unlink_when_idle = true;
  }

  post_event(md, make_event(op, EventType::kGetStart));
  ops_.put(token, op);
  if (fault::InvariantChecker* chk = eng_.invariants()) {
    chk->target_accepted(cfg_.id.nid, cfg_.id.pid, token);
  }

  d.deliver = true;
  d.mlength = mlength;
  d.segments = md_slice(md.desc, offset, mlength);
  d.token = token;

  WireHeader reply;
  reply.op = WireOp::kReply;
  reply.src_nid = cfg_.id.nid;
  reply.src_pid = cfg_.id.pid;
  reply.dst_pid = hdr.src_pid;
  reply.pt_index = hdr.pt_index;
  reply.match_bits = hdr.match_bits;
  reply.length = mlength;
  reply.md_id = hdr.md_id;  // echo the initiator's op token
  reply.md_gen = hdr.md_gen;
  d.reply_header = reply;
  return d;
}

void Library::reply_sent(std::uint64_t token) {
  OpRec* op_p = ops_.find(token);
  if (op_p == nullptr) return;
  const OpRec op = *op_p;
  ops_.erase(token);
  if (MdRec* md = md_deref(op.md)) {
    post_event(*md, make_event(op, EventType::kGetEnd));
  }
  release_op_md(op.md);
  if (fault::InvariantChecker* chk = eng_.invariants()) {
    chk->target_delivered(cfg_.id.nid, cfg_.id.pid, token);
  }
}

void Library::on_ack(const WireHeader& hdr) {
  OpRec* op_p = ops_.find(token_of(hdr));
  if (op_p == nullptr) return;
  OpRec& op = *op_p;
  if (op.kind != OpRec::Kind::kPutOut) return;
  if (MdRec* md = md_deref(op.md)) {
    Event ev = make_event(op, EventType::kAck);
    ev.mlength = hdr.length;  // bytes the target actually deposited
    post_event(*md, ev);
  }
  op.ack_done = true;
  if (op.tx_done) {
    release_op_md(op.md);
    ops_.erase(token_of(hdr));
    if (fault::InvariantChecker* chk = eng_.invariants()) {
      chk->initiator_done(cfg_.id.nid, cfg_.id.pid, token_of(hdr));
    }
  }
}

void Library::send_complete(std::uint64_t token) {
  OpRec* op_p = ops_.find(token);
  if (op_p == nullptr) return;
  OpRec& op = *op_p;
  if (op.kind == OpRec::Kind::kPutOut) {
    if (MdRec* md = md_deref(op.md)) {
      post_event(*md, make_event(op, EventType::kSendEnd));
    }
    op.tx_done = true;
    // A put retires after SEND_END and (when an ack was requested) the ack.
    // If the target's MD disables acks, the ack never comes and the op
    // stays open — mirroring the spec, where the initiator's PTL_EVENT_ACK
    // simply does not fire.
    const bool wants_ack = op.ack == AckReq::kAck;
    if (!wants_ack || op.ack_done) {
      release_op_md(op.md);
      ops_.erase(token);
      if (fault::InvariantChecker* chk = eng_.invariants()) {
        chk->initiator_done(cfg_.id.nid, cfg_.id.pid, token);
      }
    }
  }
  // kGetOut: the op stays open until the reply is deposited.
}

void Library::ack_timeout(std::uint64_t token) {
  OpRec* op_p = ops_.find(token);
  if (op_p == nullptr) return;  // resolved before the deadline
  const OpRec op = *op_p;
  // Only initiator-side waits time out; kReplyIn covers a get whose reply
  // arrived but is still depositing — by the deadline that counts as lost.
  if (op.kind != OpRec::Kind::kPutOut && op.kind != OpRec::Kind::kGetOut &&
      op.kind != OpRec::Kind::kReplyIn) {
    return;
  }
  ops_.erase(token);
  if (MdRec* md = md_deref(op.md)) {
    Event ev = make_event(op, op.kind == OpRec::Kind::kPutOut
                                  ? (op.tx_done ? EventType::kAck
                                                : EventType::kSendEnd)
                                  : EventType::kReplyEnd);
    ev.ni_fail = PTL_NI_FAIL_DROPPED;
    post_event(*md, ev);
  }
  release_op_md(op.md);
  if (fault::Injector* inj = eng_.fault_injector()) {
    inj->count_ack_timeout();
  }
  if (fault::InvariantChecker* chk = eng_.invariants()) {
    chk->initiator_done(cfg_.id.nid, cfg_.id.pid, token);
  }
}

std::uint64_t Library::status(SrIndex sr) const {
  switch (sr) {
    case SrIndex::kDropCount: return drops_;
    case SrIndex::kPermissionsViolations: return perm_violations_;
    case SrIndex::kMessagesSent: return msgs_sent_;
    case SrIndex::kMessagesReceived: return msgs_received_;
  }
  return 0;
}

}  // namespace xt::ptl
