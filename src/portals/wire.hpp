#pragma once

// Portals wire header — the contents of the 64-byte header packet.
//
// The header carries everything the target needs to perform matching plus
// everything the initiator needs reflected back in ACKs and replies.  The
// packed layout is 52 bytes, which leaves exactly 12 bytes of the 64-byte
// router packet for inline user data — the paper's §6 small-message
// optimization ("Because 12 bytes of user data will fit in the 64 byte
// header packet...").
//
// Two additional ops beyond the Portals four (put/get/reply/ack) implement
// the firmware-level go-back-n control traffic of §4.3's resource
// exhaustion recovery; they are invisible to the Portals library.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace xt::ptl {

enum class WireOp : std::uint8_t {
  kPut = 0,
  kGet = 1,
  kReply = 2,
  kAck = 3,
  // Firmware-internal (go-back-n): never surfaced to Portals.
  kFwAck = 4,
  kFwNack = 5,
  /// Put whose deposit ACCUMULATES (sum of f64) into the matched buffer
  /// instead of overwriting it — the target-side primitive the offload
  /// collective engine builds reductions from.  Matching, acks and events
  /// are identical to kPut.
  kAtomicSum = 6,
};

/// Ack request modes for PtlPut (ptl_ack_req_t).
enum class AckReq : std::uint8_t {
  kNone = 0,  // PTL_NOACK_REQ
  kAck = 1,   // PTL_ACK_REQ
};

struct WireHeader {
  WireOp op = WireOp::kPut;
  AckReq ack_req = AckReq::kNone;
  std::uint32_t src_nid = 0;
  std::uint16_t src_pid = 0;
  std::uint16_t dst_pid = 0;
  std::uint8_t pt_index = 0;
  std::uint8_t ac_index = 0;
  std::uint64_t match_bits = 0;
  std::uint64_t remote_offset = 0;
  /// Payload length for put/reply; requested length for get; delivered
  /// length (mlength) for ack.
  std::uint32_t length = 0;
  std::uint64_t hdr_data = 0;
  /// Initiator-side MD identity, echoed in acks/replies so the initiator
  /// can post PTL_EVENT_ACK / REPLY without a match.
  std::uint32_t md_id = 0;
  std::uint32_t md_gen = 0;
  /// Per (src-node, dst-node) stream sequence number (go-back-n, §4.3).
  std::uint32_t stream_seq = 0;

  friend bool operator==(const WireHeader&, const WireHeader&) = default;
};

/// Packed size of a WireHeader on the wire.
inline constexpr std::size_t kWireHeaderBytes = 52;
/// Router packet size (§2).
inline constexpr std::size_t kHeaderPacketBytes = 64;
/// Inline user-data capacity of the header packet: 64 - 52 = 12 bytes,
/// matching the paper's measured optimization point.
inline constexpr std::size_t kMaxInlineBytes =
    kHeaderPacketBytes - kWireHeaderBytes;

/// Serializes into exactly kWireHeaderBytes at the front of `out`
/// (out.size() >= kWireHeaderBytes).
void pack_header(const WireHeader& h, std::span<std::byte> out);

/// Parses the packed form back.
WireHeader unpack_header(std::span<const std::byte> in);

/// Builds a full header packet: packed header + inline payload (for
/// messages of <= kMaxInlineBytes user bytes).
std::array<std::byte, kHeaderPacketBytes> make_header_packet(
    const WireHeader& h, std::span<const std::byte> inline_payload);

/// Inline payload carried in a header packet (length from the header).
std::span<const std::byte> inline_payload_of(
    std::span<const std::byte> packet);

}  // namespace xt::ptl
