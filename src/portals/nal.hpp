#pragma once

// The NAL seam (§3.1/§3.2 of the paper).
//
// The reference implementation keeps one platform-independent Portals
// library and moves all platform knowledge into a Network Abstraction
// Layer.  `Nal` is the library-to-network half of that interface: the
// library hands it fully-formed wire headers and payload locations, and the
// NAL (the SSNAL, in this project) turns them into firmware mailbox
// commands.  `Memory` is the address-validation/translation half that the
// paper notes every NAL shares ("all Linux NALs ... use the same address
// validation routines").

#include <cstddef>
#include <cstdint>
#include <span>

#include "portals/types.hpp"
#include "portals/wire.hpp"

namespace xt::ptl {

/// Process memory access used by the library for inline copies and by the
/// NAL to build DMA programs.  Addresses are virtual addresses in the
/// owning process's address space.
class Memory {
 public:
  virtual ~Memory() = default;
  virtual bool valid(std::uint64_t addr, std::size_t len) const = 0;
  virtual void read(std::uint64_t addr, std::span<std::byte> out) const = 0;
  virtual void write(std::uint64_t addr, std::span<const std::byte> in) = 0;
};

/// Library-to-network transmit interface.
class Nal {
 public:
  virtual ~Nal() = default;

  enum class TxKind : std::uint8_t { kPut, kGetRequest, kReply, kAck };

  /// Queues one Portals message for transmission.  `dst_nid` is the target
  /// node (it travels in the routing header, not the Portals header).
  /// `payload` is the (possibly scatter/gather) source in the calling
  /// process's memory — empty for get requests and acks.  Taken by value
  /// and moved down the stack; IoVecList keeps small lists inline, so a
  /// typical send never allocates for its segment list.  `token` is echoed
  /// in the library's completion callback for this transmit.
  virtual int send(TxKind kind, std::uint32_t dst_nid, const WireHeader& hdr,
                   IoVecList payload, std::uint64_t token) = 0;

  /// This node's id (PtlGetId) and topology distance (PtlNIDist).
  virtual std::uint32_t nid() const = 0;
  virtual int distance(std::uint32_t nid) const = 0;
};

}  // namespace xt::ptl
