#pragma once

// Portals event queue.
//
// A bounded ring of ptl_event_t in the owning process's memory.  The
// library (running in kernel space in generic mode, or in user space in
// accelerated mode) appends; the application consumes with PtlEQGet /
// PtlEQWait.  Overflow follows the 3.3 semantics: the new event is
// discarded and the next successful PtlEQGet returns PTL_EQ_DROPPED to
// signal the gap.
//
// The ring is a fixed vector sized at allocation — like the real thing, a
// preallocated circular buffer in process memory — so the deliver path
// never allocates: posting reuses slot storage (including each Event's
// inline iovec list) instead of growing a deque.

#include <cstddef>
#include <vector>

#include "portals/types.hpp"
#include "sim/condition.hpp"

namespace xt::ptl {

class EventQueue {
 public:
  EventQueue(sim::Engine& eng, std::size_t count)
      : capacity_(count), slots_(count), waiters_(eng) {}

  /// Library side: append an event (stamps its sequence number, which is
  /// returned so callers can probe ordering invariants).
  std::uint64_t post(Event ev) {
    const std::uint64_t seq = next_seq_++;
    ev.sequence = seq;
    if (len_ >= capacity_) {
      dropped_ = true;
      ++drop_count_;
    } else {
      slots_[(head_ + len_) % capacity_] = std::move(ev);
      ++len_;
    }
    waiters_.notify_all();
    return seq;
  }

  /// Application side (PtlEQGet): PTL_OK, PTL_EQ_EMPTY, or PTL_EQ_DROPPED
  /// (an event IS returned with PTL_EQ_DROPPED; the code flags that at
  /// least one earlier event was lost).
  int get(Event* out) {
    if (len_ == 0) return PTL_EQ_EMPTY;
    *out = slots_[head_];
    head_ = (head_ + 1) % capacity_;
    --len_;
    if (dropped_) {
      dropped_ = false;
      return PTL_EQ_DROPPED;
    }
    return PTL_OK;
  }

  bool empty() const { return len_ == 0; }
  std::size_t size() const { return len_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t drop_count() const { return drop_count_; }

  /// PtlEQWait parks here between polls.
  sim::WaitQueue& waiters() { return waiters_; }

 private:
  std::size_t capacity_;
  std::vector<Event> slots_;
  std::size_t head_ = 0;
  std::size_t len_ = 0;
  bool dropped_ = false;
  std::uint64_t drop_count_ = 0;
  std::uint64_t next_seq_ = 0;
  sim::WaitQueue waiters_;
};

}  // namespace xt::ptl
