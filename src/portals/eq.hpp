#pragma once

// Portals event queue.
//
// A bounded ring of ptl_event_t in the owning process's memory.  The
// library (running in kernel space in generic mode, or in user space in
// accelerated mode) appends; the application consumes with PtlEQGet /
// PtlEQWait.  Overflow follows the 3.3 semantics: the new event is
// discarded and the next successful PtlEQGet returns PTL_EQ_DROPPED to
// signal the gap.

#include <cstddef>
#include <deque>

#include "portals/types.hpp"
#include "sim/condition.hpp"

namespace xt::ptl {

class EventQueue {
 public:
  EventQueue(sim::Engine& eng, std::size_t count)
      : capacity_(count), waiters_(eng) {}

  /// Library side: append an event (stamps its sequence number, which is
  /// returned so callers can probe ordering invariants).
  std::uint64_t post(Event ev) {
    const std::uint64_t seq = next_seq_++;
    ev.sequence = seq;
    if (ring_.size() >= capacity_) {
      dropped_ = true;
      ++drop_count_;
    } else {
      ring_.push_back(ev);
    }
    waiters_.notify_all();
    return seq;
  }

  /// Application side (PtlEQGet): PTL_OK, PTL_EQ_EMPTY, or PTL_EQ_DROPPED
  /// (an event IS returned with PTL_EQ_DROPPED; the code flags that at
  /// least one earlier event was lost).
  int get(Event* out) {
    if (ring_.empty()) return PTL_EQ_EMPTY;
    *out = ring_.front();
    ring_.pop_front();
    if (dropped_) {
      dropped_ = false;
      return PTL_EQ_DROPPED;
    }
    return PTL_OK;
  }

  bool empty() const { return ring_.empty(); }
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t drop_count() const { return drop_count_; }

  /// PtlEQWait parks here between polls.
  sim::WaitQueue& waiters() { return waiters_; }

 private:
  std::size_t capacity_;
  std::deque<Event> ring_;
  bool dropped_ = false;
  std::uint64_t drop_count_ = 0;
  std::uint64_t next_seq_ = 0;
  sim::WaitQueue waiters_;
};

}  // namespace xt::ptl
