#include "netpipe/live.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "mpi/mpi.hpp"
#include "sim/condition.hpp"

namespace xt::np {

using host::LiveOptions;
using host::LiveRank;
using host::Process;
using ptl::AckReq;
using ptl::Api;
using ptl::EqHandle;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::MdHandle;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;
using sim::Time;

namespace {

constexpr ptl::MatchBits kBits = 0x4C4E50;  // "LNP"
constexpr std::uint32_t kPt = 3;

/// One rank's NetPIPE state: the live analogue of PortalsModule::Side.
struct LiveSide {
  Process* proc = nullptr;
  std::uint64_t lbuf = 0;
  std::uint64_t rbuf = 0;
  EqHandle eq;
  MdHandle md;
  std::array<std::uint64_t, 16> seen{};
  std::array<std::uint64_t, 16> want{};
};

CoTask<void> side_setup(LiveSide& s, std::size_t max_bytes) {
  Api& api = s.proc->api();
  s.lbuf = s.proc->alloc(max_bytes);
  s.rbuf = s.proc->alloc(max_bytes);
  auto eq = co_await api.PtlEQAlloc(8192);
  s.eq = eq.value;
  auto me = co_await api.PtlMEAttach(kPt,
                                     ProcessId{ptl::kNidAny, ptl::kPidAny},
                                     kBits, 0, Unlink::kRetain,
                                     InsPos::kAfter);
  MdDesc rd;
  rd.start = s.rbuf;
  rd.length = static_cast<std::uint32_t>(max_bytes);
  rd.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE |
               ptl::PTL_MD_TRUNCATE;
  rd.eq = s.eq;
  (void)co_await api.PtlMDAttach(me.value, rd, Unlink::kRetain);
  MdDesc ld;
  ld.start = s.lbuf;
  ld.length = static_cast<std::uint32_t>(max_bytes);
  ld.eq = s.eq;
  auto lmd = co_await api.PtlMDBind(ld, Unlink::kRetain);
  s.md = lmd.value;
}

/// Cumulative-counter event wait (same idiom as PortalsModule::next).
CoTask<void> next(LiveSide& s, EventType t, std::uint64_t n = 1) {
  const auto i = static_cast<std::size_t>(t);
  s.want[i] += n;
  Api& api = s.proc->api();
  while (s.seen[i] < s.want[i]) {
    auto ev = co_await api.PtlEQWait(s.eq);
    if (ev.rc != PTL_OK && ev.rc != ptl::PTL_EQ_DROPPED) co_return;
    ++s.seen[static_cast<std::size_t>(ev.value.type)];
  }
}

/// One side of `iters` put round trips (PortalsModule::put_pp_side, with
/// the peer identified by ProcessId instead of a shared Module pointer).
CoTask<void> pp_rounds(LiveSide& s, ProcessId peer, std::size_t bytes,
                       int iters, bool first) {
  Api& api = s.proc->api();
  for (int i = 0; i < iters; ++i) {
    if (first) {
      (void)co_await api.PtlPutRegion(s.md, 0,
                                      static_cast<std::uint32_t>(bytes),
                                      AckReq::kNone, peer, kPt, 0, kBits, 0,
                                      0);
      co_await next(s, EventType::kPutEnd);
    } else {
      co_await next(s, EventType::kPutEnd);
      (void)co_await api.PtlPutRegion(s.md, 0,
                                      static_cast<std::uint32_t>(bytes),
                                      AckReq::kNone, peer, kPt, 0, kBits, 0,
                                      0);
    }
  }
  co_await next(s, EventType::kSendEnd, static_cast<std::uint64_t>(iters));
}

std::byte pattern_byte(int rank, std::size_t i) {
  return static_cast<std::byte>((static_cast<std::size_t>(rank) * 131 +
                                 i * 7 + 13) &
                                0xff);
}

void fill_pattern(Process& p, std::uint64_t buf, std::size_t bytes,
                  int rank) {
  std::vector<std::byte> v(bytes);
  for (std::size_t i = 0; i < bytes; ++i) v[i] = pattern_byte(rank, i);
  p.write_bytes(buf, v);
}

bool check_pattern(Process& p, std::uint64_t buf, std::size_t bytes,
                   int sender_rank) {
  std::vector<std::byte> v(bytes);
  p.read_bytes(buf, v);
  for (std::size_t i = 0; i < bytes; ++i) {
    if (v[i] != pattern_byte(sender_rank, i)) return false;
  }
  return true;
}

LiveRunResult fold(std::vector<host::LiveRankResult> ranks,
                   std::vector<Sample> samples, bool data_ok) {
  LiveRunResult out;
  out.samples = std::move(samples);
  out.data_ok = data_ok;
  for (const auto& r : ranks) {
    out.total_msgs_sent += r.nic_msgs_sent;
    out.fw_retransmits += r.fw.retransmits;
    out.crc_drops += r.nic_crc_drops;
    out.transport_drops += r.drops_injected + r.send_failures;
    if (!r.ok()) out.ranks_ok = false;
  }
  out.ranks = std::move(ranks);
  return out;
}

}  // namespace

LiveRunResult run_live_pingpong_sweep(const LiveOptions& opts,
                                      const Options& np_opts) {
  if (opts.ranks != 2) {
    throw std::invalid_argument("live ping-pong needs exactly 2 ranks");
  }
  const std::vector<std::size_t> ladder = size_ladder(np_opts);
  std::vector<Sample> samples;
  std::array<bool, 2> ok{true, true};

  host::LiveApp app = [&](LiveRank& lr) -> CoTask<void> {
    LiveSide s;
    s.proc = &lr.process();
    co_await side_setup(s, np_opts.max_bytes);
    fill_pattern(*s.proc, s.lbuf, np_opts.max_bytes, lr.rank());
    co_await lr.barrier();
    for (const std::size_t bytes : ladder) {
      const int it = iters_for(bytes, np_opts);
      co_await lr.barrier();
      const Time t0 = lr.engine().now();
      co_await pp_rounds(s, lr.peer(1 - lr.rank()), bytes, it,
                         lr.rank() == 0);
      const Time t1 = lr.engine().now();
      co_await lr.barrier();
      if (!check_pattern(*s.proc, s.rbuf, bytes, 1 - lr.rank())) {
        ok[static_cast<std::size_t>(lr.rank())] = false;
      }
      if (lr.rank() == 0) {
        Sample smp;
        smp.bytes = bytes;
        smp.usec_per_transfer = (t1 - t0).to_us() / (2.0 * it);
        smp.mbytes_per_sec =
            static_cast<double>(bytes) / smp.usec_per_transfer;
        samples.push_back(smp);
      }
    }
  };

  auto ranks = host::run_live_cluster(opts, app);
  return fold(std::move(ranks), std::move(samples), ok[0] && ok[1]);
}

LiveRunResult run_live_pingpong(const LiveOptions& opts, std::size_t bytes,
                                int iters) {
  if (opts.ranks != 2) {
    throw std::invalid_argument("live ping-pong needs exactly 2 ranks");
  }
  std::vector<Sample> samples;
  std::array<bool, 2> ok{true, true};

  host::LiveApp app = [&](LiveRank& lr) -> CoTask<void> {
    LiveSide s;
    s.proc = &lr.process();
    co_await side_setup(s, bytes);
    fill_pattern(*s.proc, s.lbuf, bytes, lr.rank());
    co_await lr.barrier();
    const Time t0 = lr.engine().now();
    co_await pp_rounds(s, lr.peer(1 - lr.rank()), bytes, iters,
                       lr.rank() == 0);
    const Time t1 = lr.engine().now();
    co_await lr.barrier();
    if (!check_pattern(*s.proc, s.rbuf, bytes, 1 - lr.rank())) {
      ok[static_cast<std::size_t>(lr.rank())] = false;
    }
    if (lr.rank() == 0) {
      Sample smp;
      smp.bytes = bytes;
      smp.usec_per_transfer = (t1 - t0).to_us() / (2.0 * iters);
      smp.mbytes_per_sec =
          static_cast<double>(bytes) / smp.usec_per_transfer;
      samples.push_back(smp);
    }
  };

  auto ranks = host::run_live_cluster(opts, app);
  return fold(std::move(ranks), std::move(samples), ok[0] && ok[1]);
}

LiveRunResult run_live_allreduce(const LiveOptions& opts, int rounds,
                                 std::uint32_t count) {
  const int n = opts.ranks;
  std::vector<std::uint8_t> ok(static_cast<std::size_t>(n), 1);

  host::LiveApp app = [&](LiveRank& lr) -> CoTask<void> {
    std::vector<ProcessId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) ids.push_back(lr.peer(r));
    mpi::Comm comm(lr.process(), ids, lr.rank(), mpi::Flavor::mpich1());
    (void)co_await comm.init();
    co_await lr.barrier();

    const std::uint64_t buf = lr.process().alloc(count * 8);
    std::vector<double> v(count);
    for (int round = 0; round < rounds; ++round) {
      // Integer-valued doubles: the sum is exact regardless of the
      // reduction's association order, so verification can be ==.
      for (std::uint32_t i = 0; i < count; ++i) {
        v[i] = static_cast<double>(lr.rank() + 1) +
               static_cast<double>(i) + static_cast<double>(round);
      }
      lr.process().write_bytes(buf, std::as_bytes(std::span(v)));
      (void)co_await comm.allreduce_sum(buf, count);
      lr.process().read_bytes(buf, std::as_writable_bytes(std::span(v)));
      for (std::uint32_t i = 0; i < count; ++i) {
        const double expect =
            static_cast<double>(n) * static_cast<double>(n + 1) / 2.0 +
            static_cast<double>(n) *
                (static_cast<double>(i) + static_cast<double>(round));
        if (v[i] != expect) {
          ok[static_cast<std::size_t>(lr.rank())] = 0;
          break;
        }
      }
    }
    co_await lr.barrier();
  };

  auto ranks = host::run_live_cluster(opts, app);
  bool all_ok = true;
  for (const auto o : ok) all_ok = all_ok && o != 0;
  return fold(std::move(ranks), {}, all_ok);
}

}  // namespace xt::np
