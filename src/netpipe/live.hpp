#pragma once

// Live (UDP loopback) counterparts of the NetPIPE patterns and the mini-MPI
// allreduce: the same Portals call sequences PortalsModule/MpiModule issue
// in simulation, restructured as per-rank coroutines so each side runs on
// its own host thread over host::run_live_cluster.  Timing is wall-clock
// (engine time tracks the wall in live mode), so Samples from here are
// directly comparable with simulated ones — that comparison is bench/xval.

#include <cstdint>
#include <vector>

#include "host/live_cluster.hpp"
#include "netpipe/netpipe.hpp"

namespace xt::np {

struct LiveRunResult {
  /// Rank 0's wall-clock timings per rung (ping-pong sweep only).
  std::vector<Sample> samples;
  std::vector<host::LiveRankResult> ranks;

  // Cluster-wide aggregates, folded from `ranks`.
  std::uint64_t total_msgs_sent = 0;   ///< NIC messages, all ranks
  std::uint64_t fw_retransmits = 0;    ///< go-back-n resends, all ranks
  std::uint64_t crc_drops = 0;         ///< corrupted deliveries, all ranks
  std::uint64_t transport_drops = 0;   ///< datagrams lost before the wire

  /// Application-level payload verification across all ranks and rounds
  /// (receive buffers matched the bytes the peer sent; allreduce results
  /// matched the closed-form sum).
  bool data_ok = true;
  /// No rank panicked, erred, or timed out.
  bool ranks_ok = true;

  bool ok() const { return data_ok && ranks_ok && crc_drops == 0; }
};

/// NetPIPE put ping-pong over live UDP between two ranks, one rung per
/// entry of the ladder `size_ladder(np_opts)`, `iters_for`-scaled
/// iterations per rung; every rung's receive buffer is verified against
/// the sender's fill pattern.  `opts.ranks` must be 2.
LiveRunResult run_live_pingpong_sweep(const host::LiveOptions& opts,
                                      const Options& np_opts);

/// Fixed-size live ping-pong soak: `iters` round trips of `bytes`, data
/// verified on both sides.  Used by the acceptance soak (>=100k messages)
/// and the CI smoke.
LiveRunResult run_live_pingpong(const host::LiveOptions& opts,
                                std::size_t bytes, int iters);

/// `rounds` mini-MPI allreduce_sum calls across `opts.ranks` live ranks
/// (`count` doubles each), each round's result verified against the
/// closed-form expected sum on every rank.
LiveRunResult run_live_allreduce(const host::LiveOptions& opts, int rounds,
                                 std::uint32_t count);

}  // namespace xt::np
