#pragma once

// NetPIPE-style measurement harness (§5.2 of the paper).
//
// Like NetPIPE 3.6.2, the driver sweeps message sizes along a
// power-of-two ladder with +/- perturbations around each rung ("NetPIPE
// varies the message size interval ... to cover a disparate set of
// features, such as buffer alignment"), scales the iteration count per
// size, and supports three traffic patterns:
//
//   * ping-pong     — uni-directional latency/bandwidth (Figures 4 and 5);
//   * streaming     — back-to-back sends one way (Figure 6);
//   * bi-directional— both directions at once (Figure 7).
//
// The transport under test is abstracted as a Module, exactly like
// NetPIPE's modules: this project provides portals-put, portals-get and
// mpi (either flavor).  Results are returned per size as (bytes, time per
// transfer, MB/s) where MB = 10^6 bytes as in the paper's axes.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "host/node.hpp"
#include "mpi/mpi.hpp"
#include "sim/task.hpp"

namespace xt::np {

struct Options {
  std::size_t min_bytes = 1;
  std::size_t max_bytes = 8 * 1024 * 1024;
  /// Perturbations applied around each power-of-two rung (NetPIPE default
  /// is +/-3 bytes).
  int perturbation = 3;
  /// Iterations per measured size (NetPIPE auto-scales by target time; we
  /// scale down with message size to bound simulation cost).
  int base_iters = 24;
  int min_iters = 3;
  /// Streaming window: messages in flight before synchronizing.
  int stream_window = 16;
  /// MPI rendezvous protocol for the mpich transports: "" keeps the
  /// flavor default (get), "get" / "push" force one.
  std::string rndv;
  /// MPI eager/rendezvous cutoff override in bytes (0 = flavor default).
  std::uint32_t rndv_threshold = 0;
};

struct Sample {
  std::size_t bytes = 0;
  double usec_per_transfer = 0.0;  // one-way time (RTT/2 for ping-pong)
  double mbytes_per_sec = 0.0;     // MB = 1e6 bytes
};

/// One endpoint pair under test.  The module owns whatever Portals/MPI
/// state it needs on the two processes.
class Module {
 public:
  virtual ~Module() = default;
  virtual const char* name() const = 0;
  /// One-time setup on both processes (posts MEs, allocates EQs/buffers).
  virtual sim::CoTask<void> setup(std::size_t max_bytes) = 0;
  /// One ping-pong round trip of `bytes` (side 0 initiates).
  virtual sim::CoTask<void> pingpong(std::size_t bytes, int iters) = 0;
  /// `iters` back-to-back transfers side 0 -> side 1, then a sync.
  virtual sim::CoTask<void> stream(std::size_t bytes, int iters,
                                   int window) = 0;
  /// Both sides transfer simultaneously, `iters` times.
  virtual sim::CoTask<void> bidir(std::size_t bytes, int iters) = 0;
};

enum class Pattern { kPingPong, kStream, kBidir };

/// Runs the sweep; the engine is run to quiescence for each size.
std::vector<Sample> run_sweep(host::Machine& m, Module& mod, Pattern pattern,
                              const Options& opts);

/// The NetPIPE size ladder: 1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 19, ... —
/// each power of two with +/- perturbation, clamped to [min, max].
std::vector<std::size_t> size_ladder(const Options& opts);

/// Iterations measured at a given size (NetPIPE's constant-duration
/// scaling); shared by the sim sweep and the live (wall-clock) sweep so
/// their per-rung workloads are identical.
int iters_for(std::size_t bytes, const Options& opts);

/// Renders samples as the gnuplot-style table the paper's figures plot.
std::string format_table(const char* series, Pattern pattern,
                         const std::vector<Sample>& samples);

// ------------------------------------------------------------ modules ----

/// Portals-level module: put or get variant (the paper's custom NetPIPE
/// module: one match entry, an MD re-created per round so setup cost stays
/// out of the measurement).
std::unique_ptr<Module> make_portals_module(host::Process& a,
                                            host::Process& b, bool use_get);

/// MPI module over a given flavor.
std::unique_ptr<Module> make_mpi_module(host::Process& a, host::Process& b,
                                        const mpi::Flavor& flavor);

// ------------------------------------------------------ series naming ----

/// The four transport series of the paper's figures, plus accelerated-mode
/// variants of the Portals transports (the paper's future work).
/// (One-call measurement lives in harness/netpipe_bench.hpp, built on the
/// Scenario layer.)
enum class Transport { kPut, kGet, kMpich1, kMpich2, kPutAccel, kGetAccel };
const char* transport_name(Transport t);

}  // namespace xt::np
