#include "netpipe/netpipe.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "sim/condition.hpp"
#include "sim/strf.hpp"

namespace xt::np {

using host::Machine;
using host::Process;
using ptl::AckReq;
using ptl::Api;
using ptl::EqHandle;
using ptl::Event;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::MdHandle;
using ptl::ProcessId;
using ptl::PTL_OK;
using ptl::Unlink;
using sim::CoTask;
using sim::Time;

namespace {

constexpr ptl::MatchBits kBits = 0x4E50;  // "NP"
constexpr std::uint32_t kPt = 3;

/// Runs two coroutines concurrently and resumes when both finish.
CoTask<void> parallel2(sim::Engine& eng, CoTask<void> x, CoTask<void> y) {
  struct State {
    explicit State(sim::Engine& e) : wq(e) {}
    int remaining = 2;
    sim::WaitQueue wq;
  };
  auto st = std::make_shared<State>(eng);
  auto wrap = [](CoTask<void> t, std::shared_ptr<State> s) -> CoTask<void> {
    co_await std::move(t);
    if (--s->remaining == 0) s->wq.notify_all();
  };
  sim::spawn(wrap(std::move(x), st));
  sim::spawn(wrap(std::move(y), st));
  while (st->remaining > 0) co_await st->wq.wait();
}

// (Event waiting is done with cumulative per-type counters inside the
// Portals module: a scan that merely discards non-matching events would
// lose counts that a later wait depends on.)

// ----------------------------------------------------- Portals module ----

class PortalsModule final : public Module {
 public:
  PortalsModule(Process& a, Process& b, bool use_get)
      : use_get_(use_get) {
    side_[0].proc = &a;
    side_[1].proc = &b;
  }

  const char* name() const override { return use_get_ ? "get" : "put"; }

  CoTask<void> setup(std::size_t max_bytes) override {
    for (auto& s : side_) {
      Api& api = s.proc->api();
      s.lbuf = s.proc->alloc(max_bytes);
      s.rbuf = s.proc->alloc(max_bytes);
      auto eq = co_await api.PtlEQAlloc(8192);
      s.eq = eq.value;
      auto me = co_await api.PtlMEAttach(
          kPt, ProcessId{ptl::kNidAny, ptl::kPidAny}, kBits, 0,
          Unlink::kRetain, InsPos::kAfter);
      // Receive-side MD: remote-managed offsets so every transfer lands at
      // the buffer base; never exhausts.
      MdDesc rd;
      rd.start = s.rbuf;
      rd.length = static_cast<std::uint32_t>(max_bytes);
      rd.options = ptl::PTL_MD_OP_PUT | ptl::PTL_MD_OP_GET |
                   ptl::PTL_MD_MANAGE_REMOTE | ptl::PTL_MD_TRUNCATE;
      rd.eq = s.eq;
      (void)co_await api.PtlMDAttach(me.value, rd, Unlink::kRetain);
      // Local MD used to initiate puts/gets.
      MdDesc ld;
      ld.start = s.lbuf;
      ld.length = static_cast<std::uint32_t>(max_bytes);
      ld.eq = s.eq;
      auto lmd = co_await api.PtlMDBind(ld, Unlink::kRetain);
      s.md = lmd.value;
    }
  }

  CoTask<void> pingpong(std::size_t bytes, int iters) override {
    if (!use_get_) {
      co_await parallel2(engine(), put_pp_side(0, bytes, iters, true),
                         put_pp_side(1, bytes, iters, false));
    } else {
      co_await parallel2(engine(), get_pp_side(0, bytes, iters, true),
                         get_pp_side(1, bytes, iters, false));
    }
  }

  CoTask<void> stream(std::size_t bytes, int iters, int window) override {
    if (!use_get_) {
      co_await parallel2(engine(), put_stream_tx(0, bytes, iters, window),
                         put_stream_rx(1, iters));
    } else {
      // A blocking get cannot be pipelined (§6): each one completes before
      // the next is issued; the target side is passive.
      Side& s = side_[0];
      for (int i = 0; i < iters; ++i) {
        (void)co_await s.proc->api().PtlGetRegion(
            s.md, 0, static_cast<std::uint32_t>(bytes), peer_id(0), kPt, 0,
            kBits, 0);
        co_await next(s, EventType::kReplyEnd);
      }
    }
  }

  CoTask<void> bidir(std::size_t bytes, int iters) override {
    if (!use_get_) {
      co_await parallel2(engine(), put_bidir_side(0, bytes, iters),
                         put_bidir_side(1, bytes, iters));
    } else {
      co_await parallel2(engine(), get_bidir_side(0, bytes, iters),
                         get_bidir_side(1, bytes, iters));
    }
  }

 private:
  struct Side {
    Process* proc = nullptr;
    std::uint64_t lbuf = 0;
    std::uint64_t rbuf = 0;
    EqHandle eq;
    MdHandle md;
    /// Cumulative events seen / awaited, indexed by EventType.
    std::array<std::uint64_t, 16> seen{};
    std::array<std::uint64_t, 16> want{};
  };

  /// Waits until one more event of `t` (beyond all previously awaited ones)
  /// has been observed on side `s`.  Every event is counted, so waits are
  /// immune to arrival-order differences between e.g. SEND_END and PUT_END.
  CoTask<void> next(Side& s, EventType t, std::uint64_t n = 1) {
    const auto i = static_cast<std::size_t>(t);
    s.want[i] += n;
    Api& api = s.proc->api();
    while (s.seen[i] < s.want[i]) {
      auto ev = co_await api.PtlEQWait(s.eq);
      if (ev.rc != PTL_OK && ev.rc != ptl::PTL_EQ_DROPPED) co_return;
      ++s.seen[static_cast<std::size_t>(ev.value.type)];
    }
  }

  sim::Engine& engine() { return side_[0].proc->node().engine(); }
  ProcessId peer_id(int s) { return side_[1 - s].proc->id(); }
  Side& side(int s) { return side_[static_cast<std::size_t>(s)]; }

  CoTask<void> put_pp_side(int idx, std::size_t bytes, int iters,
                           bool first) {
    Side& s = side(idx);
    Api& api = s.proc->api();
    for (int i = 0; i < iters; ++i) {
      if (first) {
        (void)co_await api.PtlPutRegion(s.md, 0,
                                        static_cast<std::uint32_t>(bytes),
                                        AckReq::kNone, peer_id(idx), kPt, 0,
                                        kBits, 0, 0);
        co_await next(s, EventType::kPutEnd);
      } else {
        co_await next(s, EventType::kPutEnd);
        (void)co_await api.PtlPutRegion(s.md, 0,
                                        static_cast<std::uint32_t>(bytes),
                                        AckReq::kNone, peer_id(idx), kPt, 0,
                                        kBits, 0, 0);
      }
    }
    // Collect every local completion so nothing leaks into the next size.
    co_await next(s, EventType::kSendEnd, static_cast<std::uint64_t>(iters));
  }

  CoTask<void> get_pp_side(int idx, std::size_t bytes, int iters,
                           bool first) {
    Side& s = side(idx);
    Api& api = s.proc->api();
    for (int i = 0; i < iters; ++i) {
      if (first) {
        (void)co_await api.PtlGetRegion(s.md, 0,
                                        static_cast<std::uint32_t>(bytes),
                                        peer_id(idx), kPt, 0, kBits, 0);
        co_await next(s, EventType::kReplyEnd);
        co_await next(s, EventType::kGetEnd);
      } else {
        co_await next(s, EventType::kGetEnd);
        (void)co_await api.PtlGetRegion(s.md, 0,
                                        static_cast<std::uint32_t>(bytes),
                                        peer_id(idx), kPt, 0, kBits, 0);
        co_await next(s, EventType::kReplyEnd);
      }
    }
  }

  CoTask<void> put_stream_tx(int idx, std::size_t bytes, int iters,
                             int window) {
    Side& s = side(idx);
    Api& api = s.proc->api();
    int outstanding = 0;
    for (int i = 0; i < iters; ++i) {
      (void)co_await api.PtlPutRegion(s.md, 0,
                                      static_cast<std::uint32_t>(bytes),
                                      AckReq::kNone, peer_id(idx), kPt, 0,
                                      kBits, 0, 0);
      if (++outstanding >= window) {
        co_await next(s, EventType::kSendEnd);
        --outstanding;
      }
    }
    co_await next(s, EventType::kSendEnd,
                  static_cast<std::uint64_t>(outstanding));
    // Wait for the receiver's sync message.
    co_await next(s, EventType::kPutEnd);
  }

  CoTask<void> put_stream_rx(int idx, int iters) {
    Side& s = side(idx);
    Api& api = s.proc->api();
    co_await next(s, EventType::kPutEnd, static_cast<std::uint64_t>(iters));
    (void)co_await api.PtlPutRegion(s.md, 0, 1, AckReq::kNone, peer_id(idx),
                                    kPt, 0, kBits, 0, 0);
    co_await next(s, EventType::kSendEnd);
  }

  CoTask<void> put_bidir_side(int idx, std::size_t bytes, int iters) {
    Side& s = side(idx);
    Api& api = s.proc->api();
    for (int i = 0; i < iters; ++i) {
      (void)co_await api.PtlPutRegion(s.md, 0,
                                      static_cast<std::uint32_t>(bytes),
                                      AckReq::kNone, peer_id(idx), kPt, 0,
                                      kBits, 0, 0);
      co_await next(s, EventType::kPutEnd);
    }
    co_await next(s, EventType::kSendEnd, static_cast<std::uint64_t>(iters));
  }

  CoTask<void> get_bidir_side(int idx, std::size_t bytes, int iters) {
    Side& s = side(idx);
    Api& api = s.proc->api();
    for (int i = 0; i < iters; ++i) {
      (void)co_await api.PtlGetRegion(s.md, 0,
                                      static_cast<std::uint32_t>(bytes),
                                      peer_id(idx), kPt, 0, kBits, 0);
      co_await next(s, EventType::kReplyEnd);
    }
    co_await next(s, EventType::kGetEnd, static_cast<std::uint64_t>(iters));
  }

  bool use_get_;
  Side side_[2];
};

// --------------------------------------------------------- MPI module ----

class MpiModule final : public Module {
 public:
  MpiModule(Process& a, Process& b, const mpi::Flavor& flavor)
      : flavor_(flavor) {
    const std::vector<ProcessId> ids{a.id(), b.id()};
    comm_[0] = std::make_unique<mpi::Comm>(a, ids, 0, flavor);
    comm_[1] = std::make_unique<mpi::Comm>(b, ids, 1, flavor);
  }

  const char* name() const override { return flavor_.name; }

  CoTask<void> setup(std::size_t max_bytes) override {
    for (int s = 0; s < 2; ++s) {
      buf_[s] = comm(s).process().alloc(max_bytes);
      (void)co_await comm(s).init();
    }
  }

  CoTask<void> pingpong(std::size_t bytes, int iters) override {
    auto first = [](mpi::Comm& c, std::uint64_t buf, std::uint32_t n,
                    int iters_) -> CoTask<void> {
      for (int i = 0; i < iters_; ++i) {
        (void)co_await c.send(buf, n, 1, 1);
        (void)co_await c.recv(buf, n, 1, 2, nullptr);
      }
    };
    auto second = [](mpi::Comm& c, std::uint64_t buf, std::uint32_t n,
                     int iters_) -> CoTask<void> {
      for (int i = 0; i < iters_; ++i) {
        (void)co_await c.recv(buf, n, 0, 1, nullptr);
        (void)co_await c.send(buf, n, 0, 2);
      }
    };
    co_await parallel2(engine(),
                       first(comm(0), buf_[0],
                             static_cast<std::uint32_t>(bytes), iters),
                       second(comm(1), buf_[1],
                              static_cast<std::uint32_t>(bytes), iters));
  }

  CoTask<void> stream(std::size_t bytes, int iters, int window) override {
    auto tx = [](mpi::Comm& c, std::uint64_t buf, std::uint32_t n,
                 int iters_, int window_) -> CoTask<void> {
      std::vector<mpi::Request> reqs(static_cast<std::size_t>(window_));
      int inflight = 0;
      for (int i = 0; i < iters_; ++i) {
        if (inflight == window_) {
          (void)co_await c.waitall(reqs);
          inflight = 0;
        }
        (void)co_await c.isend(buf, n, 1, 1,
                               &reqs[static_cast<std::size_t>(inflight++)]);
      }
      (void)co_await c.waitall(
          std::span(reqs).first(static_cast<std::size_t>(inflight)));
      (void)co_await c.recv(buf, 4, 1, 2, nullptr);  // sync
    };
    auto rx = [](mpi::Comm& c, std::uint64_t buf, std::uint32_t n,
                 int iters_) -> CoTask<void> {
      for (int i = 0; i < iters_; ++i) {
        (void)co_await c.recv(buf, n, 0, 1, nullptr);
      }
      (void)co_await c.send(buf, 4, 0, 2);
    };
    co_await parallel2(
        engine(),
        tx(comm(0), buf_[0], static_cast<std::uint32_t>(bytes), iters,
           window),
        rx(comm(1), buf_[1], static_cast<std::uint32_t>(bytes), iters));
  }

  CoTask<void> bidir(std::size_t bytes, int iters) override {
    auto side = [](mpi::Comm& c, std::uint64_t buf, std::uint32_t n,
                   int iters_, int peer) -> CoTask<void> {
      for (int i = 0; i < iters_; ++i) {
        mpi::Request sreq, rreq;
        (void)co_await c.irecv(buf, n, peer, 1, &rreq);
        (void)co_await c.isend(buf, n, peer, 1, &sreq);
        (void)co_await c.wait(&sreq);
        (void)co_await c.wait(&rreq);
      }
    };
    co_await parallel2(
        engine(),
        side(comm(0), buf_[0], static_cast<std::uint32_t>(bytes), iters, 1),
        side(comm(1), buf_[1], static_cast<std::uint32_t>(bytes), iters, 0));
  }

 private:
  mpi::Comm& comm(int s) { return *comm_[static_cast<std::size_t>(s)]; }
  sim::Engine& engine() { return comm(0).process().node().engine(); }

  mpi::Flavor flavor_;
  std::unique_ptr<mpi::Comm> comm_[2];
  std::uint64_t buf_[2] = {0, 0};
};

}  // namespace

std::unique_ptr<Module> make_portals_module(Process& a, Process& b,
                                            bool use_get) {
  return std::make_unique<PortalsModule>(a, b, use_get);
}

std::unique_ptr<Module> make_mpi_module(Process& a, Process& b,
                                        const mpi::Flavor& flavor) {
  return std::make_unique<MpiModule>(a, b, flavor);
}

// -------------------------------------------------------------- driver ----

std::vector<std::size_t> size_ladder(const Options& opts) {
  std::vector<std::size_t> out;
  auto push = [&](long long v) {
    if (v < static_cast<long long>(opts.min_bytes) ||
        v > static_cast<long long>(opts.max_bytes)) {
      return;
    }
    const auto s = static_cast<std::size_t>(v);
    if (out.empty() || out.back() != s) out.push_back(s);
  };
  for (std::size_t p = 1; p <= opts.max_bytes; p *= 2) {
    const auto base = static_cast<long long>(p);
    push(base - opts.perturbation);
    push(base);
    push(base + opts.perturbation);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int iters_for(std::size_t bytes, const Options& opts) {
  // NetPIPE keeps each test's duration roughly constant; scale the
  // iteration count down as the message (and thus simulation cost) grows.
  const double scale =
      4096.0 / (4096.0 + static_cast<double>(bytes) / 16.0);
  const int iters = static_cast<int>(opts.base_iters * scale);
  return std::max(opts.min_iters, iters);
}

std::vector<Sample> run_sweep(Machine& m, Module& mod, Pattern pattern,
                              const Options& opts) {
  bool setup_done = false;
  sim::spawn([](Module& mm, std::size_t max, bool* done) -> CoTask<void> {
    co_await mm.setup(max);
    *done = true;
  }(mod, opts.max_bytes, &setup_done));
  m.run();
  if (!setup_done) throw std::runtime_error("netpipe module setup stalled");

  std::vector<Sample> out;
  for (const std::size_t bytes : size_ladder(opts)) {
    const int iters = iters_for(bytes, opts);
    bool done = false;
    const Time t0 = m.engine().now();
    sim::spawn([](Module& mm, Pattern p, std::size_t n, int it, int win,
                  bool* d) -> CoTask<void> {
      switch (p) {
        case Pattern::kPingPong: co_await mm.pingpong(n, it); break;
        case Pattern::kStream: co_await mm.stream(n, it, win); break;
        case Pattern::kBidir: co_await mm.bidir(n, it); break;
      }
      *d = true;
    }(mod, pattern, bytes, iters, opts.stream_window, &done));
    m.run();
    if (!done) {
      throw std::runtime_error(
          sim::strf("netpipe %s stalled at %zu bytes", mod.name(), bytes));
    }
    const double total_us = (m.engine().now() - t0).to_us();

    Sample s;
    s.bytes = bytes;
    switch (pattern) {
      case Pattern::kPingPong:
        s.usec_per_transfer = total_us / (2.0 * iters);
        s.mbytes_per_sec =
            static_cast<double>(bytes) / s.usec_per_transfer;
        break;
      case Pattern::kStream:
        s.usec_per_transfer = total_us / iters;
        s.mbytes_per_sec =
            static_cast<double>(bytes) / s.usec_per_transfer;
        break;
      case Pattern::kBidir:
        // One iteration moves `bytes` in EACH direction.
        s.usec_per_transfer = total_us / iters;
        s.mbytes_per_sec =
            2.0 * static_cast<double>(bytes) / s.usec_per_transfer;
        break;
    }
    out.push_back(s);
  }
  return out;
}

const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kPut: return "put";
    case Transport::kGet: return "get";
    case Transport::kMpich1: return "mpich-1.2.6";
    case Transport::kMpich2: return "mpich2";
    case Transport::kPutAccel: return "put-accel";
    case Transport::kGetAccel: return "get-accel";
  }
  return "?";
}

std::string format_table(const char* series, Pattern pattern,
                         const std::vector<Sample>& samples) {
  std::string out = sim::strf("# series: %s (%s)\n# %10s %14s %12s\n",
                              series,
                              pattern == Pattern::kPingPong ? "ping-pong"
                              : pattern == Pattern::kStream ? "streaming"
                                                            : "bi-directional",
                              "bytes", "usec/xfer", "MB/s");
  for (const Sample& s : samples) {
    out += sim::strf("  %10zu %14.3f %12.2f\n", s.bytes, s.usec_per_transfer,
                     s.mbytes_per_sec);
  }
  return out;
}

}  // namespace xt::np
