#pragma once

// Synthetic traffic generation over the full Portals stack.
//
// run_workload() drives one WorkloadSpec against a live harness::Instance:
// it precomputes the complete destination schedule and (open loop) arrival
// timeline from the spec seed, attaches one event queue, receive buffer and
// send MD per rank, then runs sender and event-pump coroutines until every
// rank has observed its exact expected event counts.  Because the schedule
// is a pure function of the spec (sim::Rng streams forked in rank order),
// results are byte-identical across reruns and --jobs values.
//
// Loop disciplines:
//   kOpen    messages are injected at precomputed absolute arrival times
//            (exponential / uniform / fixed inter-arrivals at the offered
//            rate); latency is measured from the *intended* arrival, so
//            queueing delay shows up in the percentiles and the curve turns
//            into the classic hockey stick past saturation.  A per-sender
//            in-flight cap (spec.outstanding) bounds resource usage — past
//            saturation the generator degrades to closed-loop at the cap,
//            which is exactly where delivered throughput stops tracking
//            offered load (load_runner.hpp detects that point).
//   kClosed  each sender keeps spec.outstanding requests in flight and
//            issues the next the moment a slot frees; latency is measured
//            from issue time (pure service latency, no self-queueing).
//
// Completion tracking: every message carries its arrival/issue timestamp in
// hdr_data.  One-way latency is recorded at the receiver's kPutEnd; RPC
// clients track each outstanding request individually and record RTT when
// the server's reply (echoing the request's hdr_data) lands.  Non-RPC
// senders request Portals acks and pace on kAck, so the in-flight cap
// counts messages not yet *delivered*, not merely not yet transmitted.

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "sim/time.hpp"
#include "workload/pattern.hpp"

namespace xt::workload {

enum class Loop : std::uint8_t { kOpen, kClosed };
enum class Arrival : std::uint8_t { kExponential, kUniform, kFixed };

const char* loop_name(Loop l);
const char* arrival_name(Arrival a);

struct WorkloadSpec {
  PatternKind pattern = PatternKind::kUniform;
  int ranks = 8;
  std::uint32_t bytes = 2048;
  /// Messages each sending rank injects (RPC: requests per client).
  int msgs_per_sender = 100;
  Loop loop = Loop::kOpen;
  Arrival arrival = Arrival::kExponential;
  /// Aggregate offered load in messages/second across all senders (open
  /// loop only; closed loop runs as fast as the outstanding window allows).
  double offered_msgs_per_sec = 1e5;
  /// Closed loop: requests each sender keeps in flight.  Open loop: cap on
  /// a sender's undelivered messages (bounds NIC pending usage; see above).
  int outstanding = 8;
  std::uint64_t seed = 1;
  /// kRpc only: when > 0, ranks [0, rpc_clients) are pure clients and the
  /// rest are pure servers; when 0, every rank is both (uniform server
  /// choice either way).
  int rpc_clients = 0;
  /// Corruption experiments with retransmission off: pace on kSendEnd
  /// instead of kAck and let receivers count dropped deliveries toward
  /// their expected totals, so the run terminates even though some
  /// messages are never delivered intact.
  bool count_drops = false;
  /// Match-list churn stress: each rank interleaves decoy ME
  /// attach/insert/unlink storms (head and tail, exact and use-once
  /// flavors) with its normal traffic.  The decoys use a reserved
  /// match-bits namespace and carry no usable MD, so they never steal a
  /// workload message — they only stress match-list maintenance and force
  /// every incoming message to walk past non-matching entries.
  bool me_churn = false;
};

struct WorkloadResult {
  std::uint64_t sent = 0;       ///< data messages issued (excludes replies)
  std::uint64_t delivered = 0;  ///< target kPutEnd with ni_fail == PTL_NI_OK
  std::uint64_t dropped = 0;    ///< target kPutEnd with PTL_NI_FAIL_DROPPED
  std::uint64_t replies = 0;    ///< RPC replies delivered back to clients
  /// False when a pump gave up (event-queue failure) or the run quiesced
  /// with expected events still missing — e.g. messages lost with no
  /// recovery protocol enabled.
  bool complete = false;
  /// Empty when complete; otherwise a classification of why the run fell
  /// short — "node N panicked: ...", "stranded initiator: rank R ..." or
  /// "incomplete: ..." — so sweeps can report the reason per point instead
  /// of asserting.  Never printed by the stock benches (their stdout stays
  /// byte-identical); consumers opt in.
  std::string failure;
  sim::Time span{};  ///< traffic-phase duration (setup excluded)
  /// Open loop: the last scheduled arrival offset — the injection horizon
  /// the finite sample actually offered.  sent / sched_span is the
  /// *effective* offered rate (a finite exponential sample's tail makes it
  /// sit below the nominal rate), which is what delivered throughput must
  /// track below saturation.  Zero for closed loop.
  sim::Time sched_span{};
  /// One sample per delivered message: one-way latency at the receiver,
  /// or request RTT at the client for kRpc.  Rank-major order.
  std::vector<std::uint64_t> latency_ps;

  double delivered_per_sec() const;
  /// sent / sched_span — the offered rate realized by the schedule (0 when
  /// closed loop / no schedule).
  double offered_effective_per_sec() const;
  /// Exact p-th percentile (nearest-rank) of latency_ps; 0 when empty.
  std::uint64_t percentile_ps(int p) const;
  /// Same, in tenths of a percent (p999 = 999) — the exact tail the
  /// telemetry histogram's interpolated p999 approximates.
  std::uint64_t percentile_tenths_ps(int p_tenths) const;
};

/// Builds the scenario shape every workload runs on: one process per node,
/// rank i on node i, on the near-cubic torus from shape_for_ranks().
harness::Scenario workload_scenario(const WorkloadSpec& spec,
                                    host::ProcMode mode,
                                    const ss::Config& cfg,
                                    std::uint64_t scenario_seed);

/// Runs the workload on `inst` (built from a Scenario with >= spec.ranks
/// processes, rank i on node i).  Reentrant with respect to the instance:
/// runs the engine to quiescence twice (setup, then traffic).  Records
/// workload.* counters — and the workload.latency_ps histogram when
/// sampling is on — into the engine's metrics registry.
WorkloadResult run_workload(harness::Instance& inst, const WorkloadSpec& spec);

}  // namespace xt::workload
