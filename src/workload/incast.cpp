#include "workload/incast.hpp"

#include "harness/scenario.hpp"
#include "portals/api.hpp"
#include "sim/task.hpp"

namespace xt::workload {

namespace {

using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using sim::CoTask;

struct RxCount {
  int ok = 0;
  int dropped = 0;
};

CoTask<void> receiver(host::Process& p, std::uint64_t buf, int total,
                      IncastSpec::Exit exit, RxCount* count) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(8192);
  auto me = co_await api.PtlMEAttach(0, ProcessId{ptl::kNidAny, ptl::kPidAny},
                                     1, 0, Unlink::kRetain, InsPos::kAfter);
  MdDesc d;
  d.start = buf;
  d.length = 1u << 20;
  d.options =
      ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE | ptl::PTL_MD_TRUNCATE;
  d.eq = eq.value;
  (void)co_await api.PtlMDAttach(me.value, d, Unlink::kRetain);
  while (count->ok < total &&
         (exit == IncastSpec::Exit::kRetryUntilOk ||
          count->ok + count->dropped < total)) {
    auto ev = co_await api.PtlEQWait(eq.value);
    if (ev.rc != ptl::PTL_OK && ev.rc != ptl::PTL_EQ_DROPPED) co_return;
    if (ev.value.type == EventType::kPutEnd) {
      if (ev.value.ni_fail == ptl::PTL_NI_OK) {
        ++count->ok;
      } else {
        ++count->dropped;
      }
    }
  }
}

CoTask<void> sender(host::Process& p, int n, std::uint32_t len,
                    ptl::Pid pid) {
  auto& api = p.api();
  auto eq = co_await api.PtlEQAlloc(8192);
  MdDesc d;
  d.start = p.alloc(len);
  d.length = len;
  d.eq = eq.value;
  auto md = co_await api.PtlMDBind(d, Unlink::kRetain);
  int sent = 0;
  for (int i = 0; i < n; ++i) {
    (void)co_await api.PtlPut(md.value, AckReq::kNone, ProcessId{0, pid}, 0,
                              0, 1, 0, 0);
  }
  while (sent < n) {
    auto ev = co_await api.PtlEQWait(eq.value);
    if (ev.rc != ptl::PTL_OK) co_return;
    if (ev.value.type == EventType::kSendEnd) ++sent;
  }
}

}  // namespace

IncastResult run_incast(const IncastSpec& spec) {
  harness::Scenario sc = harness::Scenario::incast(spec.senders, spec.pid);
  sc.with_config(spec.cfg).with_seed(spec.seed);
  sc.procs[0].mem_bytes = spec.receiver_mem;
  auto inst = sc.build();
  host::Machine& m = inst->machine();

  host::Process& rx = inst->proc(0);
  const std::uint64_t rbuf = rx.alloc(1u << 20);
  RxCount count;
  sim::spawn(receiver(rx, rbuf, spec.senders * spec.msgs_each, spec.exit,
                      &count));
  for (int sidx = 1; sidx <= spec.senders; ++sidx) {
    sim::spawn(sender(inst->proc(static_cast<std::size_t>(sidx)),
                      spec.msgs_each, spec.bytes, spec.pid));
  }

  inst->run();

  IncastResult r;
  r.panicked = m.node(0).firmware().panicked();
  r.panic_reason = m.node(0).firmware().panic_reason();
  r.delivered = count.ok;
  r.dropped = count.dropped;
  const auto& c = m.node(0).firmware().counters();
  r.nacks = c.nacks_sent;
  r.exhaustion_drops = c.exhaustion_drops;
  r.crc_drops = c.crc_drops;
  std::uint64_t rt = 0;
  for (int sidx = 1; sidx <= spec.senders; ++sidx) {
    rt += m.node(static_cast<net::NodeId>(sidx))
              .firmware()
              .counters()
              .retransmits;
  }
  r.retransmits = rt;
  r.ms = m.engine().now().to_ms();
  return r;
}

}  // namespace xt::workload
