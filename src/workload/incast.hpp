#pragma once

// Many-to-one incast on raw PtlPut, extracted from bench/abl_gobackn.cpp
// so the exhaustion ablation and the link-corruption regression tests
// drive the identical traffic.
//
// Unlike the schedule-driven generator (generator.hpp), this is the
// simplest possible hot loop: every sender binds one MD and fires
// `msgs_each` unacked puts at rank 0 back to back, then waits for its
// kSendEnd events; the receiver counts kPutEnd events against the total.
// That bluntness is the point — it reproduces the firmware-level behaviour
// (exhaustion panics, go-back-n NACK storms, CRC drop-and-retransmit)
// without any application-level pacing in the way.

#include <cstdint>
#include <string>

#include "portals/types.hpp"
#include "seastar/config.hpp"

namespace xt::workload {

struct IncastSpec {
  /// Receiver exit policy.  kRetryUntilOk waits for `senders * msgs_each`
  /// intact deliveries — right when a recovery protocol (go-back-n)
  /// retransmits every loss.  kCountDrops also counts failed deliveries
  /// (kPutEnd with PTL_NI_FAIL_DROPPED) toward the total, so corruption
  /// runs with no retransmission still terminate.
  enum class Exit : std::uint8_t { kRetryUntilOk, kCountDrops };

  int senders = 8;
  int msgs_each = 40;
  std::uint32_t bytes = 2048;
  ptl::Pid pid = 7;
  ss::Config cfg{};
  std::uint64_t seed = 1;
  std::size_t receiver_mem = 128u << 20;
  Exit exit = Exit::kRetryUntilOk;
};

struct IncastResult {
  bool panicked = false;
  std::string panic_reason;
  int delivered = 0;  ///< intact deliveries (ni_fail == PTL_NI_OK)
  int dropped = 0;    ///< failed delivery attempts seen by the receiver
  std::uint64_t nacks = 0;        ///< receiver-firmware NACKs sent
  std::uint64_t exhaustion_drops = 0;
  std::uint64_t crc_drops = 0;    ///< receiver e2e CRC rejections
  std::uint64_t retransmits = 0;  ///< summed over all sender firmwares
  double ms = 0.0;
};

/// Builds the incast scenario, runs it to quiescence, and returns the
/// delivery outcome plus the firmware counters the §4.3 ablation reports.
IncastResult run_incast(const IncastSpec& spec);

}  // namespace xt::workload
