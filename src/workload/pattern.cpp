#include "workload/pattern.hpp"

#include <algorithm>
#include <cassert>

namespace xt::workload {

const char* pattern_name(PatternKind k) {
  switch (k) {
    case PatternKind::kUniform: return "uniform";
    case PatternKind::kHalo3d: return "halo3d";
    case PatternKind::kPermutation: return "permutation";
    case PatternKind::kIncast: return "incast";
    case PatternKind::kRpc: return "rpc";
    case PatternKind::kStencil: return "stencil";
    case PatternKind::kKv: return "kv";
  }
  return "?";
}

std::optional<PatternKind> pattern_from_name(std::string_view name) {
  for (PatternKind k : all_patterns()) {
    if (name == pattern_name(k)) return k;
  }
  return std::nullopt;
}

const std::vector<PatternKind>& all_patterns() {
  static const std::vector<PatternKind> kAll = {
      PatternKind::kUniform, PatternKind::kHalo3d, PatternKind::kPermutation,
      PatternKind::kIncast, PatternKind::kRpc,
      PatternKind::kStencil,  PatternKind::kKv};
  return kAll;
}

std::vector<int> halo_neighbors(const net::Shape& shape, int rank) {
  const net::Coord c = shape.to_coord(static_cast<net::NodeId>(rank));
  std::vector<int> out;
  const auto push = [&](int x, int y, int z, int extent, bool wrap) {
    if (extent > 1) {
      // Mesh dimensions (Red Storm X/Y) have no wraparound link.
      if (!wrap && (x < 0 || x >= shape.nx || y < 0 || y >= shape.ny ||
                    z < 0 || z >= shape.nz)) {
        return;
      }
      const net::Coord n{(x + shape.nx) % shape.nx, (y + shape.ny) % shape.ny,
                         (z + shape.nz) % shape.nz};
      const int id = static_cast<int>(shape.to_id(n));
      if (id != rank && std::find(out.begin(), out.end(), id) == out.end()) {
        out.push_back(id);
      }
    }
  };
  push(c.x + 1, c.y, c.z, shape.nx, shape.wrap_x);
  push(c.x - 1, c.y, c.z, shape.nx, shape.wrap_x);
  push(c.x, c.y + 1, c.z, shape.ny, shape.wrap_y);
  push(c.x, c.y - 1, c.z, shape.ny, shape.wrap_y);
  push(c.x, c.y, c.z + 1, shape.nz, shape.wrap_z);
  push(c.x, c.y, c.z - 1, shape.nz, shape.wrap_z);
  return out;
}

Pattern::Pattern(PatternKind kind, const net::Shape& shape, int ranks,
                 std::uint64_t seed)
    : kind_(kind), shape_(shape), ranks_(ranks) {
  assert(ranks >= 2);
  assert(ranks <= shape.count());
  sim::Rng base(seed);
  rank_rng_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) rank_rng_.push_back(base.fork());
  if (kind == PatternKind::kHalo3d || kind == PatternKind::kStencil) {
    nbrs_.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      std::vector<int> nb = halo_neighbors(shape, r);
      // The virtual torus rounds the rank count up to a power of two, so
      // a non-power-of-two job has unpopulated slots; a neighbour there
      // is no rank at all.  Keep only neighbours the job actually has —
      // a rank whose neighbours all fall outside simply doesn't send.
      std::erase_if(nb, [ranks](int id) { return id >= ranks; });
      nbrs_.push_back(std::move(nb));
    }
  }
  if (kind == PatternKind::kPermutation) {
    perm_.resize(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) perm_[static_cast<std::size_t>(r)] = r;
    // Fisher-Yates off a dedicated fork (taken after the per-rank forks so
    // those streams stay stable across kinds), then break any fixed point
    // by swapping with the neighbouring slot — deterministic, and the
    // result stays a permutation with pi(r) != r everywhere for ranks >= 2.
    sim::Rng prng = base.fork();
    for (int r = ranks - 1; r > 0; --r) {
      const auto j = static_cast<std::size_t>(
          prng.below(static_cast<std::uint64_t>(r) + 1));
      std::swap(perm_[static_cast<std::size_t>(r)], perm_[j]);
    }
    for (int r = 0; r < ranks; ++r) {
      const auto u = static_cast<std::size_t>(r);
      if (perm_[u] == r) {
        const std::size_t v = static_cast<std::size_t>((r + 1) % ranks);
        std::swap(perm_[u], perm_[v]);
      }
    }
  }
}

bool Pattern::is_sender(int rank) const {
  if (kind_ == PatternKind::kIncast) return rank != 0;
  if (kind_ == PatternKind::kHalo3d || kind_ == PatternKind::kStencil) {
    return !nbrs_[static_cast<std::size_t>(rank)].empty();
  }
  return true;
}

int Pattern::dest(int rank, std::uint64_t i) {
  assert(rank >= 0 && rank < ranks_);
  switch (kind_) {
    case PatternKind::kUniform:
    case PatternKind::kRpc:
    case PatternKind::kKv: {
      auto d = static_cast<int>(rank_rng_[static_cast<std::size_t>(rank)]
                                    .below(static_cast<std::uint64_t>(
                                        ranks_ - 1)));
      if (d >= rank) ++d;  // skip self, stay uniform over the others
      return d;
    }
    case PatternKind::kHalo3d:
    case PatternKind::kStencil: {
      const auto& n = nbrs_[static_cast<std::size_t>(rank)];
      assert(!n.empty());
      return n[static_cast<std::size_t>(i % n.size())];
    }
    case PatternKind::kPermutation:
      return perm_[static_cast<std::size_t>(rank)];
    case PatternKind::kIncast:
      assert(rank != 0);
      return 0;
  }
  return 0;
}

}  // namespace xt::workload
