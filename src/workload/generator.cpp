#include "workload/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "portals/api.hpp"
#include "sim/condition.hpp"
#include "sim/strf.hpp"
#include "sim/task.hpp"
#include "telemetry/hooks.hpp"
#include "telemetry/metrics.hpp"

namespace xt::workload {

namespace {

using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using sim::CoTask;

// Match bits: one match list entry per role so the pump can tell data
// deposits from RPC replies by ev.match_bits alone.
constexpr ptl::MatchBits kDataBits = 1;
constexpr ptl::MatchBits kReplyBits = 2;

/// What event frees a sender's in-flight slot.
enum class Pace : std::uint8_t {
  kAck,      // non-RPC default: Portals ack (message delivered)
  kSendEnd,  // count_drops runs: local transmit completion
  kReply,    // RPC: the server's reply
};

struct RankPlan {
  std::vector<int> dest;           // destination of the i-th message
  std::vector<sim::Time> arrival;  // open loop: offset from traffic start
};

struct Plan {
  std::vector<RankPlan> send;
  std::vector<int> expect_data;  // data messages addressed to each rank
  sim::Time sched_span{};        // last scheduled arrival (open loop)
};

struct Ctx {
  const WorkloadSpec* spec = nullptr;
  sim::Engine* eng = nullptr;
  ptl::Pid pid = 0;  // every rank's process shares one pid
  Pace pace = Pace::kAck;
  bool rpc = false;
  sim::Time t0{};
  std::uint64_t sent = 0;
};

struct RankState {
  host::Process* proc = nullptr;
  std::unique_ptr<sim::WaitQueue> slots;
  std::size_t eq_depth = 0;
  ptl::EqHandle eq{};
  ptl::MdHandle send_md{};
  int inflight = 0;

  std::uint64_t send_end = 0, acks = 0, data_ok = 0, data_drop = 0,
                replies = 0;
  std::uint64_t exp_send_end = 0, exp_acks = 0, exp_data = 0, exp_replies = 0;

  std::vector<std::uint64_t> lat_ps;
  /// Per-request completion tracking (RPC): hdr_data stamp -> requests
  /// still awaiting a reply with that stamp.  Must drain to empty.
  std::unordered_map<std::uint64_t, int> pending;
  /// stamp -> provenance record id (only populated when provenance is on).
  std::unordered_multimap<std::uint64_t, std::uint64_t> prov;

  bool done(const Ctx& ctx) const {
    const std::uint64_t data_done =
        data_ok + (ctx.spec->count_drops ? data_drop : 0);
    return send_end >= exp_send_end && acks >= exp_acks &&
           data_done >= exp_data && replies >= exp_replies;
  }
};

double interarrival_s(sim::Rng& rng, Arrival a, double rate) {
  switch (a) {
    case Arrival::kExponential:
      return -std::log1p(-rng.uniform01()) / rate;
    case Arrival::kUniform:
      return 2.0 * rng.uniform01() / rate;
    case Arrival::kFixed:
      return 1.0 / rate;
  }
  return 1.0 / rate;
}

Plan build_plan(const WorkloadSpec& spec) {
  const net::Shape shape = harness::shape_for_ranks(spec.ranks);
  // Decorrelate the destination and arrival streams: both fork per-rank
  // sub-streams in rank order, so they must not start from the same state.
  sim::Rng seeder(spec.seed);
  const std::uint64_t pattern_seed = seeder.u64();
  const std::uint64_t arrival_seed = seeder.u64();

  Pattern pat(spec.pattern, shape, spec.ranks, pattern_seed);
  const bool dedicated =
      spec.pattern == PatternKind::kRpc && spec.rpc_clients > 0;
  const int servers = spec.ranks - spec.rpc_clients;
  assert(!dedicated || servers >= 1);

  Plan plan;
  plan.send.resize(static_cast<std::size_t>(spec.ranks));
  plan.expect_data.assign(static_cast<std::size_t>(spec.ranks), 0);

  // Dedicated-server RPC draws its own per-client streams (the generic
  // Pattern draws servers uniformly over *all* other ranks).
  std::vector<sim::Rng> cli_rng;
  if (dedicated) {
    sim::Rng base(pattern_seed);
    for (int r = 0; r < spec.rpc_clients; ++r) cli_rng.push_back(base.fork());
  }

  for (int r = 0; r < spec.ranks; ++r) {
    const bool sender =
        dedicated ? r < spec.rpc_clients : pat.is_sender(r);
    if (!sender) continue;
    RankPlan& rp = plan.send[static_cast<std::size_t>(r)];
    rp.dest.reserve(static_cast<std::size_t>(spec.msgs_per_sender));
    for (int i = 0; i < spec.msgs_per_sender; ++i) {
      const int dst =
          dedicated
              ? spec.rpc_clients +
                    static_cast<int>(cli_rng[static_cast<std::size_t>(r)]
                                         .below(static_cast<std::uint64_t>(
                                             servers)))
              : pat.dest(r, static_cast<std::uint64_t>(i));
      rp.dest.push_back(dst);
      ++plan.expect_data[static_cast<std::size_t>(dst)];
    }
  }

  if (spec.loop == Loop::kOpen) {
    assert(spec.offered_msgs_per_sec > 0.0);
    int senders = 0;
    for (const RankPlan& rp : plan.send) senders += rp.dest.empty() ? 0 : 1;
    const double rate = spec.offered_msgs_per_sec / std::max(senders, 1);
    sim::Rng abase(arrival_seed);
    for (int r = 0; r < spec.ranks; ++r) {
      sim::Rng arng = abase.fork();  // rank order, senders or not
      RankPlan& rp = plan.send[static_cast<std::size_t>(r)];
      rp.arrival.reserve(rp.dest.size());
      double t = 0.0;
      for (std::size_t i = 0; i < rp.dest.size(); ++i) {
        t += interarrival_s(arng, spec.arrival, rate);
        rp.arrival.push_back(
            sim::Time::ps(static_cast<std::int64_t>(std::llround(t * 1e12))));
      }
      if (!rp.arrival.empty() && rp.arrival.back() > plan.sched_span) {
        plan.sched_span = rp.arrival.back();
      }
    }
  }
  return plan;
}

CoTask<void> setup_rank(RankState& st, Ctx& ctx) {
  auto& api = st.proc->api();
  auto eq = co_await api.PtlEQAlloc(st.eq_depth);
  st.eq = eq.value;

  const std::uint32_t bytes = std::max<std::uint32_t>(ctx.spec->bytes, 1);
  auto me = co_await api.PtlMEAttach(0, ProcessId{ptl::kNidAny, ptl::kPidAny},
                                     kDataBits, 0, Unlink::kRetain,
                                     InsPos::kAfter);
  MdDesc sink;
  sink.start = st.proc->alloc(bytes);
  sink.length = bytes;
  sink.options =
      ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE | ptl::PTL_MD_TRUNCATE;
  sink.eq = st.eq;
  (void)co_await api.PtlMDAttach(me.value, sink, Unlink::kRetain);

  if (ctx.rpc) {
    auto rme = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, kReplyBits, 0,
        Unlink::kRetain, InsPos::kAfter);
    MdDesc rsink = sink;
    rsink.start = st.proc->alloc(bytes);
    (void)co_await api.PtlMDAttach(rme.value, rsink, Unlink::kRetain);
  }

  MdDesc src;
  src.start = st.proc->alloc(bytes);
  src.length = bytes;
  src.eq = st.eq;
  auto md = co_await api.PtlMDBind(src, Unlink::kRetain);
  st.send_md = md.value;
}

void free_slot(RankState& st) {
  if (st.inflight > 0) --st.inflight;
  st.slots->notify_one();
}

/// Stamps kHostDeliver on the provenance record opened for `stamp` (if
/// provenance is on): ack arrival for non-RPC sends, reply arrival for RPC.
void prov_deliver(RankState& st, Ctx& ctx, std::uint64_t stamp) {
  auto it = st.prov.find(stamp);
  if (it == st.prov.end()) return;
  telemetry::prov_stamp(*ctx.eng, it->second, telemetry::Stage::kHostDeliver);
  st.prov.erase(it);
}

CoTask<void> pump_rank(RankState& st, Ctx& ctx) {
  auto& api = st.proc->api();
  while (!st.done(ctx)) {
    auto ev = co_await api.PtlEQWait(st.eq);
    if (ev.rc != ptl::PTL_OK && ev.rc != ptl::PTL_EQ_DROPPED) co_return;
    const ptl::Event& e = ev.value;
    switch (e.type) {
      case EventType::kSendEnd:
        ++st.send_end;
        if (ctx.pace == Pace::kSendEnd) free_slot(st);
        break;
      case EventType::kAck:
        ++st.acks;
        if (ctx.pace == Pace::kAck) {
          free_slot(st);
          prov_deliver(st, ctx, e.hdr_data);
        }
        break;
      case EventType::kPutEnd: {
        if (e.ni_fail != ptl::PTL_NI_OK) {
          // A delivery attempt dropped at this NIC (CRC fail, exhaustion).
          ++st.data_drop;
          break;
        }
        if (ctx.rpc && e.match_bits == kReplyBits) {
          // Reply landed at the client: settle the tracked request.
          ++st.replies;
          st.lat_ps.push_back(
              static_cast<std::uint64_t>(ctx.eng->now().to_ps()) - e.hdr_data);
          auto it = st.pending.find(e.hdr_data);
          if (it != st.pending.end() && --it->second == 0) {
            st.pending.erase(it);
          }
          free_slot(st);
          prov_deliver(st, ctx, e.hdr_data);
        } else {
          ++st.data_ok;
          if (ctx.rpc) {
            // Serve the request: reply to the initiator, echoing the
            // request's timestamp so the client can compute RTT.
            (void)co_await api.PtlPut(st.send_md, AckReq::kNone, e.initiator,
                                      0, 0, kReplyBits, 0, e.hdr_data);
          } else {
            st.lat_ps.push_back(
                static_cast<std::uint64_t>(ctx.eng->now().to_ps()) -
                e.hdr_data);
          }
        }
        break;
      }
      default:
        break;  // start events, unlinks
    }
  }
}

CoTask<void> send_rank(int rank, RankState& st, const RankPlan& plan,
                       Ctx& ctx) {
  auto& api = st.proc->api();
  sim::Engine& eng = *ctx.eng;
  const bool open = ctx.spec->loop == Loop::kOpen;
  const int cap = std::max(ctx.spec->outstanding, 1);
  const AckReq ack =
      ctx.pace == Pace::kAck ? AckReq::kAck : AckReq::kNone;
  for (std::size_t i = 0; i < plan.dest.size(); ++i) {
    const int dst = plan.dest[i];
    std::uint64_t prov_id = 0;
    sim::Time at{};
    if (open) {
      at = ctx.t0 + plan.arrival[i];
      if (at > eng.now()) co_await sim::delay(eng, at - eng.now());
      prov_id = telemetry::prov_begin_at(
          eng, static_cast<std::uint32_t>(rank),
          static_cast<std::uint32_t>(dst), ctx.spec->bytes,
          telemetry::Stage::kAppArrival);
    }
    while (st.inflight >= cap) co_await st.slots->wait();
    if (!open) {
      prov_id = telemetry::prov_begin_at(
          eng, static_cast<std::uint32_t>(rank),
          static_cast<std::uint32_t>(dst), ctx.spec->bytes,
          telemetry::Stage::kAppArrival);
    }
    // Latency reference: intended arrival (open) or issue time (closed).
    const std::uint64_t stamp = static_cast<std::uint64_t>(
        open ? at.to_ps() : eng.now().to_ps());
    telemetry::prov_stamp(eng, prov_id, telemetry::Stage::kAppQueue);
    if (prov_id != 0) st.prov.emplace(stamp, prov_id);
    if (ctx.rpc) ++st.pending[stamp];
    ++st.inflight;
    ++ctx.sent;
    (void)co_await api.PtlPut(
        st.send_md, ack,
        ProcessId{static_cast<net::NodeId>(dst), ctx.pid}, 0, 0, kDataBits,
        0, stamp);
  }
}

}  // namespace

const char* loop_name(Loop l) {
  return l == Loop::kOpen ? "open" : "closed";
}

const char* arrival_name(Arrival a) {
  switch (a) {
    case Arrival::kExponential: return "exponential";
    case Arrival::kUniform: return "uniform";
    case Arrival::kFixed: return "fixed";
  }
  return "?";
}

double WorkloadResult::delivered_per_sec() const {
  const double s = static_cast<double>(span.to_ps()) * 1e-12;
  if (s <= 0.0) return 0.0;
  return static_cast<double>(delivered) / s;
}

double WorkloadResult::offered_effective_per_sec() const {
  const double s = static_cast<double>(sched_span.to_ps()) * 1e-12;
  if (s <= 0.0) return 0.0;
  return static_cast<double>(sent) / s;
}

std::uint64_t WorkloadResult::percentile_ps(int p) const {
  if (latency_ps.empty()) return 0;
  std::vector<std::uint64_t> v = latency_ps;
  std::sort(v.begin(), v.end());
  const std::uint64_t n = v.size();
  std::uint64_t rank = (n * static_cast<std::uint64_t>(p) + 99) / 100;
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return v[static_cast<std::size_t>(rank - 1)];
}

harness::Scenario workload_scenario(const WorkloadSpec& spec,
                                    host::ProcMode mode,
                                    const ss::Config& cfg,
                                    std::uint64_t scenario_seed) {
  harness::Scenario sc = harness::Scenario::workload(spec.ranks, mode);
  sc.with_config(cfg).with_seed(scenario_seed);
  return sc;
}

WorkloadResult run_workload(harness::Instance& inst,
                            const WorkloadSpec& spec) {
  assert(inst.proc_count() >= static_cast<std::size_t>(spec.ranks));
  Plan plan = build_plan(spec);

  Ctx ctx;
  ctx.spec = &spec;
  ctx.eng = &inst.engine();
  ctx.pid = inst.proc(0).pid();
  ctx.rpc = spec.pattern == PatternKind::kRpc;
  ctx.pace = ctx.rpc ? Pace::kReply
                     : (spec.count_drops ? Pace::kSendEnd : Pace::kAck);

  std::vector<RankState> st(static_cast<std::size_t>(spec.ranks));
  for (int r = 0; r < spec.ranks; ++r) {
    RankState& s = st[static_cast<std::size_t>(r)];
    const std::size_t u = static_cast<std::size_t>(r);
    s.proc = &inst.proc(u);
    s.slots = std::make_unique<sim::WaitQueue>(*ctx.eng);
    const std::uint64_t sends = plan.send[u].dest.size();
    s.exp_data = static_cast<std::uint64_t>(plan.expect_data[u]);
    s.exp_replies = ctx.rpc ? sends : 0;
    s.exp_send_end = sends + (ctx.rpc ? s.exp_data : 0);
    s.exp_acks = ctx.pace == Pace::kAck ? sends : 0;
    // Generous: start+end pairs for every op, plus headroom for dropped
    // delivery attempts under corruption/retransmission.
    s.eq_depth = 4 * static_cast<std::size_t>(s.exp_send_end + s.exp_acks +
                                              s.exp_data + s.exp_replies) +
                 256;
  }

  for (int r = 0; r < spec.ranks; ++r) {
    sim::spawn(setup_rank(st[static_cast<std::size_t>(r)], ctx));
  }
  inst.run();

  ctx.t0 = ctx.eng->now();
  for (int r = 0; r < spec.ranks; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    sim::spawn(pump_rank(st[u], ctx));
    if (!plan.send[u].dest.empty()) {
      sim::spawn(send_rank(r, st[u], plan.send[u], ctx));
    }
  }
  inst.run();

  WorkloadResult res;
  res.sent = ctx.sent;
  res.span = ctx.eng->now() - ctx.t0;
  res.sched_span = plan.sched_span;
  res.complete = true;
  for (RankState& s : st) {
    res.delivered += s.data_ok;
    res.dropped += s.data_drop;
    res.replies += s.replies;
    if (!s.done(ctx) || !s.pending.empty()) res.complete = false;
    res.latency_ps.insert(res.latency_ps.end(), s.lat_ps.begin(),
                          s.lat_ps.end());
  }
  if (!res.complete) {
    // Classify the shortfall: a panicked node is a hard failure, a sender
    // still holding in-flight slots at quiescence is a stranded initiator,
    // anything else is plain missing deliveries (loss with no recovery).
    res.failure = inst.machine().first_panic();
    for (int r = 0; res.failure.empty() && r < spec.ranks; ++r) {
      const RankState& s = st[static_cast<std::size_t>(r)];
      if (s.inflight > 0 || !s.pending.empty()) {
        res.failure = sim::strf(
            "stranded initiator: rank %d quiesced with %d in flight, %zu "
            "request(s) unresolved",
            r, s.inflight, s.pending.size());
      }
    }
    if (res.failure.empty()) {
      res.failure = "incomplete: expected events still missing at quiescence";
    }
  }

  telemetry::MetricsRegistry& reg = ctx.eng->metrics();
  reg.counter("workload.sent").add(res.sent);
  reg.counter("workload.delivered").add(res.delivered);
  reg.counter("workload.dropped").add(res.dropped);
  reg.counter("workload.replies").add(res.replies);
  if (reg.sampling()) {
    telemetry::Histogram& h = reg.histogram("workload.latency_ps");
    for (std::uint64_t v : res.latency_ps) h.record(v);
  }
  return res;
}

}  // namespace xt::workload
