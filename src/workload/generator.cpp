#include "workload/generator.hpp"

#include <algorithm>
#include <cassert>

#include "sim/strf.hpp"
#include "telemetry/metrics.hpp"
#include "workload/detail.hpp"
#include "workload/oneside.hpp"

namespace xt::workload {

const char* loop_name(Loop l) {
  return l == Loop::kOpen ? "open" : "closed";
}

const char* arrival_name(Arrival a) {
  switch (a) {
    case Arrival::kExponential: return "exponential";
    case Arrival::kUniform: return "uniform";
    case Arrival::kFixed: return "fixed";
  }
  return "?";
}

double WorkloadResult::delivered_per_sec() const {
  const double s = static_cast<double>(span.to_ps()) * 1e-12;
  if (s <= 0.0) return 0.0;
  return static_cast<double>(delivered) / s;
}

double WorkloadResult::offered_effective_per_sec() const {
  const double s = static_cast<double>(sched_span.to_ps()) * 1e-12;
  if (s <= 0.0) return 0.0;
  return static_cast<double>(sent) / s;
}

std::uint64_t WorkloadResult::percentile_ps(int p) const {
  return percentile_tenths_ps(p * 10);
}

std::uint64_t WorkloadResult::percentile_tenths_ps(int p_tenths) const {
  if (latency_ps.empty()) return 0;
  std::vector<std::uint64_t> v = latency_ps;
  std::sort(v.begin(), v.end());
  const std::uint64_t n = v.size();
  std::uint64_t rank = (n * static_cast<std::uint64_t>(p_tenths) + 999) / 1000;
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return v[static_cast<std::size_t>(rank - 1)];
}

harness::Scenario workload_scenario(const WorkloadSpec& spec,
                                    host::ProcMode mode,
                                    const ss::Config& cfg,
                                    std::uint64_t scenario_seed) {
  harness::Scenario sc = harness::Scenario::workload(spec.ranks, mode);
  sc.with_config(cfg).with_seed(scenario_seed);
  return sc;
}

WorkloadResult run_workload(harness::Instance& inst,
                            const WorkloadSpec& spec) {
  assert(inst.proc_count() >= static_cast<std::size_t>(spec.ranks));
  if (oneside::is_oneside(spec.pattern)) {
    WorkloadResult res = oneside::run_sim(inst, spec);
    telemetry::MetricsRegistry& reg = inst.engine().metrics();
    reg.counter("workload.sent").add(res.sent);
    reg.counter("workload.delivered").add(res.delivered);
    if (reg.sampling()) {
      telemetry::Histogram& h = reg.histogram("workload.latency_ps");
      for (std::uint64_t v : res.latency_ps) h.record(v);
    }
    return res;
  }
  detail::Plan plan = detail::build_plan(spec);

  detail::Ctx ctx;
  ctx.spec = &spec;
  ctx.eng = &inst.engine();
  ctx.pid = inst.proc(0).pid();
  ctx.rpc = spec.pattern == PatternKind::kRpc;
  ctx.pace = ctx.rpc ? detail::Pace::kReply
                     : (spec.count_drops ? detail::Pace::kSendEnd
                                         : detail::Pace::kAck);

  std::vector<detail::RankState> st(static_cast<std::size_t>(spec.ranks));
  for (int r = 0; r < spec.ranks; ++r) {
    detail::RankState& s = st[static_cast<std::size_t>(r)];
    s.proc = &inst.proc(static_cast<std::size_t>(r));
    s.slots = std::make_unique<sim::WaitQueue>(*ctx.eng);
    detail::init_rank_state(s, plan, ctx, r);
  }

  for (int r = 0; r < spec.ranks; ++r) {
    sim::spawn(detail::setup_rank(st[static_cast<std::size_t>(r)], ctx));
  }
  inst.run();

  ctx.t0 = ctx.eng->now();
  for (int r = 0; r < spec.ranks; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    sim::spawn(detail::pump_rank(st[u], ctx));
    if (!plan.send[u].dest.empty()) {
      sim::spawn(detail::send_rank(r, st[u], plan.send[u], ctx));
    }
  }
  inst.run();

  WorkloadResult res =
      detail::gather_result(st, ctx, plan, inst.machine().first_panic());

  telemetry::MetricsRegistry& reg = ctx.eng->metrics();
  reg.counter("workload.sent").add(res.sent);
  reg.counter("workload.delivered").add(res.delivered);
  reg.counter("workload.dropped").add(res.dropped);
  reg.counter("workload.replies").add(res.replies);
  if (reg.sampling()) {
    telemetry::Histogram& h = reg.histogram("workload.latency_ps");
    for (std::uint64_t v : res.latency_ps) h.record(v);
  }
  return res;
}

}  // namespace xt::workload
