#include "workload/load_runner.hpp"

#include <functional>

#include "harness/sweep.hpp"

namespace xt::workload {

WorkloadResult run_load_point(const WorkloadSpec& spec, host::ProcMode mode,
                              const ss::Config& cfg,
                              std::uint64_t scenario_seed) {
  harness::Scenario sc = workload_scenario(spec, mode, cfg, scenario_seed);
  auto inst = sc.build();
  return run_workload(*inst, spec);
}

WorkloadResult run_load_point(const WorkloadSpec& spec, host::ProcMode mode,
                              const ss::Config& cfg,
                              std::uint64_t scenario_seed,
                              const harness::Scenario::TelemetrySpec& tel,
                              PointTelemetry* out) {
  harness::Scenario sc = workload_scenario(spec, mode, cfg, scenario_seed);
  sc.with_telemetry(tel);
  auto inst = sc.build();
  WorkloadResult r = run_workload(*inst, spec);
  if (out != nullptr) {
    if (inst->profiler() != nullptr) out->profile = *inst->profiler();
    if (inst->trace() != nullptr) {
      out->trace_records = inst->trace()->records();
    }
    if (inst->provenance() != nullptr) {
      out->provenance = std::move(*inst->provenance());
    }
  }
  return r;
}

LoadCurve run_load_sweep(const LoadSweepSpec& spec) {
  std::vector<std::function<LoadPoint()>> tasks;
  tasks.reserve(spec.offered.size());
  for (std::size_t i = 0; i < spec.offered.size(); ++i) {
    WorkloadSpec ws = spec.base;
    ws.loop = Loop::kOpen;
    ws.offered_msgs_per_sec = spec.offered[i];
    const std::uint64_t seed = spec.seed + i;
    const host::ProcMode mode = spec.mode;
    const ss::Config cfg = spec.cfg;
    const harness::Scenario::TelemetrySpec tel = spec.telemetry;
    tasks.push_back([ws, mode, cfg, seed, tel] {
      LoadPoint p;
      p.offered_msgs_per_sec = ws.offered_msgs_per_sec;
      PointTelemetry pt;
      p.result = run_load_point(ws, mode, cfg, seed, tel, &pt);
      p.profile = pt.profile;
      return p;
    });
  }

  LoadCurve curve;
  curve.points = harness::SweepRunner(spec.jobs).run(std::move(tasks));
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    LoadPoint& p = curve.points[i];
    // A run that fell short for a *reported* reason (stranded initiator,
    // node panic) is a failure, not the saturation knee — leave it to the
    // caller via p.result.failure and keep scanning.
    if (!p.result.failure.empty()) continue;
    // Compare against the offered rate the finite schedule realized, not
    // the nominal ladder rung — a short exponential sample's horizon sits
    // above n/rate, deflating the nominal delivered/offered ratio even
    // when nothing queues.
    const double eff = p.result.offered_effective_per_sec();
    const double offered = eff > 0.0 ? eff : p.offered_msgs_per_sec;
    if (p.result.delivered_per_sec() < (1.0 - spec.tolerance) * offered) {
      curve.saturation_index = static_cast<int>(i);
      curve.saturation_msgs_per_sec = p.result.delivered_per_sec();
      break;
    }
  }
  if (curve.saturation_index >= 0) {
    for (std::size_t i = static_cast<std::size_t>(curve.saturation_index);
         i < curve.points.size(); ++i) {
      curve.points[i].saturated = true;
    }
  }
  return curve;
}

}  // namespace xt::workload
