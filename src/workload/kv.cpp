#include <algorithm>
#include <array>
#include <cstddef>
#include <utility>

#include "sim/condition.hpp"
#include "sim/rng.hpp"
#include "workload/oneside.hpp"

// Parameter-server / KV scenario (oneside.hpp).  Layout mirrors kRpc:
// ranks [0, clients) are closed-loop clients, the last kv_servers()
// ranks are pure passive segments — a kKvSlots-entry value table each,
// no event queue, no host cycles per request.  The op stream is a pure
// function of (spec.seed, client rank, op index): RNG streams forked in
// client order, so runs are byte-identical across --jobs values and
// transports.

namespace xt::workload::oneside {

namespace {

using sim::CoTask;

struct KvOp {
  int srv = 0;
  std::uint32_t key = 0;
  bool get = false;
  std::uint64_t val = 0;
};

std::uint32_t value_bytes(const WorkloadSpec& spec) {
  return std::max<std::uint32_t>(spec.bytes, 1);
}

/// This client's op list.  Forks every client stream in order so the
/// schedule is independent of which rank asks.
std::vector<KvOp> kv_ops_for(const WorkloadSpec& spec, int rank) {
  const int servers = kv_servers(spec);
  const int clients = spec.ranks - servers;
  sim::Rng root(spec.seed);
  sim::Rng mine{0};
  for (int cl = 0; cl < clients; ++cl) {
    sim::Rng fork = root.fork();
    if (cl == rank) mine = fork;
  }
  std::vector<KvOp> ops(
      static_cast<std::size_t>(std::max(spec.msgs_per_sender, 0)));
  for (KvOp& op : ops) {
    op.srv = clients + static_cast<int>(
                           mine.below(static_cast<std::uint64_t>(servers)));
    op.key = static_cast<std::uint32_t>(mine.below(kKvSlots));
    op.get = (mine.u64() & 1) != 0;
    op.val = mine.u64();
  }
  return ops;
}

CoTask<void> with_join(CoTask<void> t, int& remaining, sim::WaitQueue& done) {
  co_await std::move(t);
  if (--remaining == 0) done.notify_all();
}

CoTask<void> kv_worker(conduit::Conduit& c, const WorkloadSpec& spec,
                       const std::vector<KvOp>& ops, std::size_t w,
                       std::size_t stride, std::vector<std::uint64_t>& lat,
                       bool& failed) {
  const std::uint32_t vbytes = value_bytes(spec);
  host::Process& proc = c.process();
  sim::Engine& eng = proc.node().engine();
  const std::uint64_t buf = proc.alloc(vbytes);

  for (std::size_t i = w; i < ops.size(); i += stride) {
    const KvOp& op = ops[i];
    const std::uint64_t roff =
        static_cast<std::uint64_t>(op.key) * vbytes;
    const sim::Time t0 = eng.now();
    int rc = ptl::PTL_OK;
    if (op.get) {
      conduit::Completion done;
      rc = co_await c.get(op.srv, buf, vbytes, roff, &done);
      if (rc == ptl::PTL_OK) rc = co_await c.wait(done);
    } else {
      std::array<std::byte, 8> stamp{};
      for (std::size_t b = 0; b < 8; ++b) {
        stamp[b] = static_cast<std::byte>((op.val >> (8 * b)) & 0xFF);
      }
      proc.write_bytes(buf, std::span(stamp.data(), std::min<std::size_t>(
                                                        vbytes, stamp.size())));
      // Remote completion = the Portals ack: the value is durably in the
      // server's table before the op counts as done.
      conduit::Completion remote;
      rc = co_await c.put(op.srv, buf, vbytes, roff, nullptr, &remote);
      if (rc == ptl::PTL_OK) rc = co_await c.wait(remote);
    }
    if (rc != ptl::PTL_OK) {
      failed = true;
      co_return;
    }
    lat.push_back(static_cast<std::uint64_t>((eng.now() - t0).to_ps()));
  }
}

}  // namespace

int kv_servers(const WorkloadSpec& spec) {
  int servers = spec.rpc_clients > 0 ? spec.ranks - spec.rpc_clients
                                     : std::max(1, spec.ranks / 4);
  return std::clamp(servers, 1, std::max(spec.ranks - 1, 1));
}

conduit::Config kv_config(const WorkloadSpec& spec, int rank,
                          std::uint16_t ns) {
  const int servers = kv_servers(spec);
  const int clients = spec.ranks - servers;
  const std::uint32_t table = kKvSlots * value_bytes(spec);
  conduit::Config cfg;
  cfg.credits = 0;
  cfg.ns = ns;
  if (rank >= clients) {
    // Pure passive target: the table, and not one host event per request.
    cfg.segment_bytes = table;
    cfg.count_deposits = false;
    cfg.eq_depth = 256;
  } else {
    cfg.segment_bytes = 0;  // clients expose nothing
    cfg.peer_segment_bytes = table;
    cfg.count_deposits = false;
    cfg.eq_depth = 4096;
  }
  return cfg;
}

sim::CoTask<void> kv_rank(conduit::Conduit& c, const WorkloadSpec& spec,
                          RankIo& io) {
  const int servers = kv_servers(spec);
  const int clients = spec.ranks - servers;
  if (c.rank() >= clients) {
    io.done = true;  // passive table: nothing to run
    co_return;
  }

  const std::vector<KvOp> ops = kv_ops_for(spec, c.rank());
  if (ops.empty()) {
    io.done = true;
    co_return;
  }
  const auto workers = static_cast<std::size_t>(std::clamp<std::size_t>(
      static_cast<std::size_t>(std::max(spec.outstanding, 1)), 1,
      ops.size()));

  sim::WaitQueue join(c.process().node().engine());
  int remaining = static_cast<int>(workers);
  std::vector<std::vector<std::uint64_t>> lat(workers);
  bool failed = false;
  for (std::size_t w = 0; w < workers; ++w) {
    sim::spawn(with_join(kv_worker(c, spec, ops, w, workers, lat[w], failed),
                         remaining, join));
  }
  while (remaining > 0) co_await join.wait();
  if (failed) co_return;

  for (std::vector<std::uint64_t>& l : lat) {
    io.lat_ps.insert(io.lat_ps.end(), l.begin(), l.end());
  }
  io.sent = ops.size();
  io.delivered = ops.size();
  io.done = true;
}

}  // namespace xt::workload::oneside
