#include "workload/detail.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "harness/scenario.hpp"
#include "portals/api.hpp"
#include "sim/strf.hpp"
#include "telemetry/hooks.hpp"
#include "workload/pattern.hpp"

namespace xt::workload::detail {

namespace {
using ptl::AckReq;
using ptl::EventType;
using ptl::InsPos;
using ptl::MdDesc;
using ptl::ProcessId;
using ptl::Unlink;
using sim::CoTask;
}  // namespace

double interarrival_s(sim::Rng& rng, Arrival a, double rate) {
  switch (a) {
    case Arrival::kExponential:
      return -std::log1p(-rng.uniform01()) / rate;
    case Arrival::kUniform:
      return 2.0 * rng.uniform01() / rate;
    case Arrival::kFixed:
      return 1.0 / rate;
  }
  return 1.0 / rate;
}

Plan build_plan(const WorkloadSpec& spec) {
  const net::Shape shape = harness::shape_for_ranks(spec.ranks);
  // Decorrelate the destination and arrival streams: both fork per-rank
  // sub-streams in rank order, so they must not start from the same state.
  sim::Rng seeder(spec.seed);
  const std::uint64_t pattern_seed = seeder.u64();
  const std::uint64_t arrival_seed = seeder.u64();

  Pattern pat(spec.pattern, shape, spec.ranks, pattern_seed);
  const bool dedicated =
      spec.pattern == PatternKind::kRpc && spec.rpc_clients > 0;
  const int servers = spec.ranks - spec.rpc_clients;
  assert(!dedicated || servers >= 1);

  Plan plan;
  plan.send.resize(static_cast<std::size_t>(spec.ranks));
  plan.expect_data.assign(static_cast<std::size_t>(spec.ranks), 0);

  // Dedicated-server RPC draws its own per-client streams (the generic
  // Pattern draws servers uniformly over *all* other ranks).
  std::vector<sim::Rng> cli_rng;
  if (dedicated) {
    sim::Rng base(pattern_seed);
    for (int r = 0; r < spec.rpc_clients; ++r) cli_rng.push_back(base.fork());
  }

  for (int r = 0; r < spec.ranks; ++r) {
    const bool sender =
        dedicated ? r < spec.rpc_clients : pat.is_sender(r);
    if (!sender) continue;
    RankPlan& rp = plan.send[static_cast<std::size_t>(r)];
    rp.dest.reserve(static_cast<std::size_t>(spec.msgs_per_sender));
    for (int i = 0; i < spec.msgs_per_sender; ++i) {
      const int dst =
          dedicated
              ? spec.rpc_clients +
                    static_cast<int>(cli_rng[static_cast<std::size_t>(r)]
                                         .below(static_cast<std::uint64_t>(
                                             servers)))
              : pat.dest(r, static_cast<std::uint64_t>(i));
      rp.dest.push_back(dst);
      ++plan.expect_data[static_cast<std::size_t>(dst)];
    }
  }

  if (spec.loop == Loop::kOpen) {
    assert(spec.offered_msgs_per_sec > 0.0);
    int senders = 0;
    for (const RankPlan& rp : plan.send) senders += rp.dest.empty() ? 0 : 1;
    const double rate = spec.offered_msgs_per_sec / std::max(senders, 1);
    sim::Rng abase(arrival_seed);
    for (int r = 0; r < spec.ranks; ++r) {
      sim::Rng arng = abase.fork();  // rank order, senders or not
      RankPlan& rp = plan.send[static_cast<std::size_t>(r)];
      rp.arrival.reserve(rp.dest.size());
      double t = 0.0;
      for (std::size_t i = 0; i < rp.dest.size(); ++i) {
        t += interarrival_s(arng, spec.arrival, rate);
        rp.arrival.push_back(
            sim::Time::ps(static_cast<std::int64_t>(std::llround(t * 1e12))));
      }
      if (!rp.arrival.empty() && rp.arrival.back() > plan.sched_span) {
        plan.sched_span = rp.arrival.back();
      }
    }
  }
  return plan;
}

void init_rank_state(RankState& st, const Plan& plan, const Ctx& ctx, int r) {
  const std::size_t u = static_cast<std::size_t>(r);
  // Private per-rank churn stream (me_churn): a pure function of the spec
  // seed and the rank, independent of the pattern/arrival streams.
  st.churn_rng = sim::Rng(ctx.spec->seed ^
                          (0xC0FFEEull * (static_cast<std::uint64_t>(r) + 1)));
  const std::uint64_t sends = plan.send[u].dest.size();
  st.exp_data = static_cast<std::uint64_t>(plan.expect_data[u]);
  st.exp_replies = ctx.rpc ? sends : 0;
  st.exp_send_end = sends + (ctx.rpc ? st.exp_data : 0);
  st.exp_acks = ctx.pace == Pace::kAck ? sends : 0;
  // Generous: start+end pairs for every op, plus headroom for dropped
  // delivery attempts under corruption/retransmission.
  st.eq_depth = 4 * static_cast<std::size_t>(st.exp_send_end + st.exp_acks +
                                             st.exp_data + st.exp_replies) +
                256;
}

CoTask<void> setup_rank(RankState& st, Ctx& ctx) {
  auto& api = st.proc->api();
  auto eq = co_await api.PtlEQAlloc(st.eq_depth);
  st.eq = eq.value;

  const std::uint32_t bytes = std::max<std::uint32_t>(ctx.spec->bytes, 1);
  auto me = co_await api.PtlMEAttach(0, ProcessId{ptl::kNidAny, ptl::kPidAny},
                                     ctx.data_bits, 0, Unlink::kRetain,
                                     InsPos::kAfter);
  MdDesc sink;
  sink.start = st.proc->alloc(bytes);
  sink.length = bytes;
  sink.options =
      ptl::PTL_MD_OP_PUT | ptl::PTL_MD_MANAGE_REMOTE | ptl::PTL_MD_TRUNCATE;
  sink.eq = st.eq;
  (void)co_await api.PtlMDAttach(me.value, sink, Unlink::kRetain);

  if (ctx.rpc) {
    auto rme = co_await api.PtlMEAttach(
        0, ProcessId{ptl::kNidAny, ptl::kPidAny}, ctx.reply_bits, 0,
        Unlink::kRetain, InsPos::kAfter);
    MdDesc rsink = sink;
    rsink.start = st.proc->alloc(bytes);
    (void)co_await api.PtlMDAttach(rme.value, rsink, Unlink::kRetain);
  }

  MdDesc src;
  src.start = st.proc->alloc(bytes);
  src.length = bytes;
  src.eq = st.eq;
  auto md = co_await api.PtlMDBind(src, Unlink::kRetain);
  st.send_md = md.value;
}

namespace {

void free_slot(RankState& st) {
  if (st.inflight > 0) --st.inflight;
  st.slots->notify_one();
}

/// Stamps kHostDeliver on the provenance record opened for `stamp` (if
/// provenance is on): ack arrival for non-RPC sends, reply arrival for RPC.
void prov_deliver(RankState& st, Ctx& ctx, std::uint64_t stamp) {
  auto it = st.prov.find(stamp);
  if (it == st.prov.end()) return;
  telemetry::prov_stamp(*ctx.eng, it->second, telemetry::Stage::kHostDeliver);
  st.prov.erase(it);
}

}  // namespace

CoTask<void> churn_step(RankState& st) {
  auto& api = st.proc->api();
  sim::Rng& rng = st.churn_rng;
  // Decoy namespace: high bit set, so it can never collide with a job's
  // data/reply bits (small integers).  ibits stays 0 — a wildcard decoy
  // with an MD could steal traffic; an exact decoy cannot.
  const ptl::MatchBits bits = 0x8000000000000000ull | rng.below(8);
  const ProcessId any{ptl::kNidAny, ptl::kPidAny};
  constexpr std::size_t kPoolCap = 48;

  const std::uint64_t roll = rng.below(4);
  if (roll == 0 || st.churn_mes.size() >= kPoolCap) {
    // Unlink storm: retire a random live decoy.
    if (!st.churn_mes.empty()) {
      const std::size_t k = rng.below(st.churn_mes.size());
      (void)co_await api.PtlMEUnlink(st.churn_mes[k]);
      st.churn_mes.erase(st.churn_mes.begin() +
                         static_cast<std::ptrdiff_t>(k));
    }
    co_return;
  }
  // Attach storm.  Head attaches are the hostile case: every incoming
  // message must walk past the decoy without matching it.
  const bool head = rng.chance(0.4);
  const bool once = rng.chance(0.3);
  ptl::Res<ptl::MeHandle> me;
  if (!st.churn_mes.empty() && rng.chance(0.3)) {
    const std::size_t k = rng.below(st.churn_mes.size());
    me = co_await api.PtlMEInsert(st.churn_mes[k], any, bits, 0,
                                  once ? Unlink::kUnlink : Unlink::kRetain,
                                  head ? InsPos::kBefore : InsPos::kAfter);
  } else {
    me = co_await api.PtlMEAttach(0, any, bits, 0,
                                  once ? Unlink::kUnlink : Unlink::kRetain,
                                  head ? InsPos::kBefore : InsPos::kAfter);
  }
  if (me.rc != ptl::PTL_OK) co_return;
  st.churn_mes.push_back(me.value);
  if (once) {
    // Use-once flavor: a threshold-1 MD rides along so unlink tears down
    // an ME with a live MD attached.  No op bits: even a zero-length put
    // aimed at the decoy bits would fail the MD op check rather than be
    // accepted, so the decoy can never consume traffic.
    MdDesc d;
    d.start = 0;
    d.length = 0;
    d.options = 0;
    d.threshold = 1;
    (void)co_await api.PtlMDAttach(me.value, d, Unlink::kUnlink);
  }
}

CoTask<void> pump_rank(RankState& st, Ctx& ctx) {
  auto& api = st.proc->api();
  while (!st.done(ctx)) {
    auto ev = co_await api.PtlEQWait(st.eq);
    if (ev.rc != ptl::PTL_OK && ev.rc != ptl::PTL_EQ_DROPPED) co_return;
    const ptl::Event& e = ev.value;
    switch (e.type) {
      case EventType::kSendEnd:
        ++st.send_end;
        if (ctx.pace == Pace::kSendEnd) free_slot(st);
        break;
      case EventType::kAck:
        ++st.acks;
        if (ctx.pace == Pace::kAck) {
          free_slot(st);
          prov_deliver(st, ctx, e.hdr_data);
        }
        break;
      case EventType::kPutEnd: {
        if (e.ni_fail != ptl::PTL_NI_OK) {
          // A delivery attempt dropped at this NIC (CRC fail, exhaustion).
          ++st.data_drop;
          break;
        }
        if (ctx.rpc && e.match_bits == ctx.reply_bits) {
          // Reply landed at the client: settle the tracked request.
          ++st.replies;
          st.lat_ps.push_back(
              static_cast<std::uint64_t>(ctx.eng->now().to_ps()) - e.hdr_data);
          auto it = st.pending.find(e.hdr_data);
          if (it != st.pending.end() && --it->second == 0) {
            st.pending.erase(it);
          }
          free_slot(st);
          prov_deliver(st, ctx, e.hdr_data);
        } else {
          ++st.data_ok;
          if (ctx.spec->me_churn) co_await churn_step(st);
          if (ctx.rpc) {
            // Serve the request: reply to the initiator, echoing the
            // request's timestamp so the client can compute RTT.
            (void)co_await api.PtlPut(st.send_md, AckReq::kNone, e.initiator,
                                      0, 0, ctx.reply_bits, 0, e.hdr_data);
          } else {
            st.lat_ps.push_back(
                static_cast<std::uint64_t>(ctx.eng->now().to_ps()) -
                e.hdr_data);
          }
        }
        break;
      }
      default:
        break;  // start events, unlinks
    }
  }
}

CoTask<void> send_rank(int rank, RankState& st, const RankPlan& plan,
                       Ctx& ctx) {
  auto& api = st.proc->api();
  sim::Engine& eng = *ctx.eng;
  const bool open = ctx.spec->loop == Loop::kOpen;
  const int cap = std::max(ctx.spec->outstanding, 1);
  const AckReq ack =
      ctx.pace == Pace::kAck ? AckReq::kAck : AckReq::kNone;
  for (std::size_t i = 0; i < plan.dest.size(); ++i) {
    const int dst = plan.dest[i];
    std::uint64_t prov_id = 0;
    sim::Time at{};
    if (open) {
      at = ctx.t0 + plan.arrival[i];
      if (at > eng.now()) co_await sim::delay(eng, at - eng.now());
      prov_id = telemetry::prov_begin_at(
          eng, static_cast<std::uint32_t>(rank),
          static_cast<std::uint32_t>(dst), ctx.spec->bytes,
          telemetry::Stage::kAppArrival);
    }
    while (st.inflight >= cap) co_await st.slots->wait();
    if (!open) {
      prov_id = telemetry::prov_begin_at(
          eng, static_cast<std::uint32_t>(rank),
          static_cast<std::uint32_t>(dst), ctx.spec->bytes,
          telemetry::Stage::kAppArrival);
    }
    // Latency reference: intended arrival (open) or issue time (closed).
    const std::uint64_t stamp = static_cast<std::uint64_t>(
        open ? at.to_ps() : eng.now().to_ps());
    telemetry::prov_stamp(eng, prov_id, telemetry::Stage::kAppQueue);
    if (prov_id != 0) st.prov.emplace(stamp, prov_id);
    if (ctx.rpc) ++st.pending[stamp];
    ++st.inflight;
    ++ctx.sent;
    (void)co_await api.PtlPut(
        st.send_md, ack, ProcessId{ctx.node_of_rank(dst), ctx.pid}, 0, 0,
        ctx.data_bits, 0, stamp);
  }
}

WorkloadResult gather_result(const std::vector<RankState>& st, const Ctx& ctx,
                             const Plan& plan,
                             const std::string& first_panic) {
  WorkloadResult res;
  res.sent = ctx.sent;
  res.span = ctx.eng->now() - ctx.t0;
  res.sched_span = plan.sched_span;
  res.complete = true;
  for (const RankState& s : st) {
    res.delivered += s.data_ok;
    res.dropped += s.data_drop;
    res.replies += s.replies;
    if (!s.done(ctx) || !s.pending.empty()) res.complete = false;
    res.latency_ps.insert(res.latency_ps.end(), s.lat_ps.begin(),
                          s.lat_ps.end());
  }
  if (!res.complete) {
    // Classify the shortfall: a panicked node is a hard failure, a sender
    // still holding in-flight slots at quiescence is a stranded initiator,
    // anything else is plain missing deliveries (loss with no recovery).
    res.failure = first_panic;
    for (std::size_t r = 0; res.failure.empty() && r < st.size(); ++r) {
      const RankState& s = st[r];
      if (s.inflight > 0 || !s.pending.empty()) {
        res.failure = sim::strf(
            "stranded initiator: rank %zu quiesced with %d in flight, %zu "
            "request(s) unresolved",
            r, s.inflight, s.pending.size());
      }
    }
    if (res.failure.empty()) {
      res.failure = "incomplete: expected events still missing at quiescence";
    }
  }
  return res;
}

}  // namespace xt::workload::detail
