#include "workload/live.hpp"

#include <memory>
#include <utility>

#include "sim/condition.hpp"
#include "sim/strf.hpp"
#include "workload/detail.hpp"
#include "workload/oneside.hpp"

namespace xt::workload {

namespace {

using sim::CoTask;

/// What one rank's app reports back to the folding code.  Mirrors the
/// per-rank slice of the simulated runner's result assembly.
struct RankOutcome {
  std::uint64_t sent = 0;
  std::uint64_t data_ok = 0;
  std::uint64_t data_drop = 0;
  std::uint64_t replies = 0;
  std::vector<std::uint64_t> lat_ps;
  bool done = false;
  int inflight_left = 0;
  std::size_t pending_left = 0;
  std::int64_t span_ps = 0;
};

/// Join latch for the pump/send pair: each wrapped task decrements and
/// notifies; the app coroutine waits for zero.
struct Join {
  explicit Join(sim::Engine& eng) : wq(eng) {}
  sim::WaitQueue wq;
  int remaining = 0;
};

CoTask<void> joined(CoTask<void> task, Join& j) {
  co_await std::move(task);
  --j.remaining;
  j.wq.notify_all();
}

/// One rank's live workload body: identical phases to run_workload — setup,
/// rendezvous, traffic — with the cluster barrier standing in for the
/// simulator's run-to-quiescence boundary between phases.
CoTask<void> run_rank(host::LiveRank& lr, const detail::Plan& plan,
                      detail::Ctx& ctx, RankOutcome& out) {
  const std::size_t u = static_cast<std::size_t>(lr.rank());

  detail::RankState st;
  st.proc = &lr.process();
  st.slots = std::make_unique<sim::WaitQueue>(lr.engine());
  detail::init_rank_state(st, plan, ctx, lr.rank());

  co_await detail::setup_rank(st, ctx);
  co_await lr.barrier();
  ctx.t0 = lr.engine().now();

  Join j(lr.engine());
  j.remaining = 1;
  sim::spawn(joined(detail::pump_rank(st, ctx), j));
  if (!plan.send[u].dest.empty()) {
    ++j.remaining;
    sim::spawn(joined(detail::send_rank(lr.rank(), st, plan.send[u], ctx), j));
  }
  while (j.remaining > 0) co_await j.wq.wait();

  out.sent = ctx.sent;
  out.data_ok = st.data_ok;
  out.data_drop = st.data_drop;
  out.replies = st.replies;
  out.lat_ps = std::move(st.lat_ps);
  out.done = st.done(ctx) && st.pending.empty();
  out.inflight_left = st.inflight;
  out.pending_left = st.pending.size();
  out.span_ps = (lr.engine().now() - ctx.t0).to_ps();
}

}  // namespace

LiveWorkloadResult run_live_workload(host::LiveOptions opts,
                                     const WorkloadSpec& spec) {
  if (oneside::is_oneside(spec.pattern)) {
    return oneside::run_live_oneside(std::move(opts), spec);
  }
  opts.ranks = spec.ranks;

  // Every rank computes the identical machine-wide plan locally —
  // build_plan is pure in the spec — and only acts on its own row, so no
  // schedule needs to cross the wire.
  const detail::Plan plan = detail::build_plan(spec);

  const bool rpc = spec.pattern == PatternKind::kRpc;
  const detail::Pace pace =
      rpc ? detail::Pace::kReply
          : (spec.count_drops ? detail::Pace::kSendEnd : detail::Pace::kAck);

  std::vector<RankOutcome> outs(static_cast<std::size_t>(spec.ranks));
  std::vector<detail::Ctx> ctxs(static_cast<std::size_t>(spec.ranks));

  host::LiveApp app = [&](host::LiveRank& lr) -> CoTask<void> {
    const std::size_t u = static_cast<std::size_t>(lr.rank());
    detail::Ctx& ctx = ctxs[u];
    ctx.spec = &spec;
    ctx.eng = &lr.engine();
    ctx.pid = opts.pid;
    ctx.pace = pace;
    ctx.rpc = rpc;
    return run_rank(lr, plan, ctx, outs[u]);
  };

  LiveWorkloadResult res;
  res.ranks = host::run_live_cluster(opts, app);

  res.result.sched_span = plan.sched_span;
  res.result.complete = true;
  for (const RankOutcome& o : outs) {
    res.result.sent += o.sent;
    res.result.delivered += o.data_ok;
    res.result.dropped += o.data_drop;
    res.result.replies += o.replies;
    if (!o.done) res.result.complete = false;
    if (o.span_ps > res.result.span.to_ps()) {
      res.result.span = sim::Time::ps(o.span_ps);
    }
    res.result.latency_ps.insert(res.result.latency_ps.end(),
                                 o.lat_ps.begin(), o.lat_ps.end());
  }
  for (std::size_t u = 0; u < outs.size(); ++u) {
    if (res.result.failure.empty() && !res.ranks[u].ok()) {
      res.result.complete = false;
      res.result.failure = sim::strf(
          "rank %zu failed: %s%s", u, res.ranks[u].panic.c_str(),
          res.ranks[u].error.c_str());
    }
    if (res.result.failure.empty() &&
        (outs[u].inflight_left > 0 || outs[u].pending_left > 0)) {
      res.result.failure = sim::strf(
          "stranded initiator: rank %zu finished with %d in flight, %zu "
          "request(s) unresolved",
          u, outs[u].inflight_left, outs[u].pending_left);
    }
  }
  if (!res.result.complete && res.result.failure.empty()) {
    res.result.failure =
        "incomplete: expected events still missing at run end";
  }
  return res;
}

}  // namespace xt::workload
