#pragma once

// App-level one-sided scenarios over the conduit (stencil, KV).
//
// Unlike the generator's message-pattern workloads — which drive raw
// Portals puts through detail::{setup,pump,send}_rank — these scenarios
// are *applications*: each rank owns a conduit::Conduit (segment +
// one-sided put/get) and runs a per-rank coroutine shaped so the same
// body executes under all three drivers:
//
//   * run_workload() (generator.cpp) branches here for kStencil/kKv and
//     runs the whole tenant inside one engine-owning call;
//   * the cluster scheduler runs run_tenant() as one job among many,
//     namespacing the conduit's match bits by job id;
//   * run_live_workload() (live.cpp) branches to run_live_oneside(),
//     one real thread per rank over UDP loopback.
//
// kStencil — 3D halo exchange on the torus from shape_for_ranks(): per
// iteration every rank puts one `bytes`-sized face into each torus
// neighbour's segment (double-buffered by iteration parity, so a
// neighbour running one iteration ahead — the most the neighbour-sync
// allows — never clobbers an unread face), waits for local completion
// and for its own deposit count, and records the exchange latency.
// sent counts faces put, delivered counts faces landed; one latency
// sample per iteration per rank.
//
// kKv — parameter-server traffic: the last kv_servers() ranks are pure
// passive segments (a 64-slot value table, no event queue at all); the
// rest run spec.outstanding closed-loop workers issuing a deterministic
// 50/50 get/put mix (keys, servers and values precomputed from
// spec.seed, pure per (client, op index)).  Puts carry a remote
// completion (Portals ack = durability), gets complete on the reply;
// every op records its RTT.

#include <cstdint>
#include <vector>

#include "conduit/conduit.hpp"
#include "harness/scenario.hpp"
#include "workload/generator.hpp"
#include "workload/live.hpp"

namespace xt::workload::oneside {

/// True for the conduit-backed app scenarios (kStencil, kKv).
bool is_oneside(PatternKind k);

/// What one rank's traffic body reports back to the gatherers.
struct RankIo {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::vector<std::uint64_t> lat_ps;
  bool done = false;
};

/// Torus neighbours of `rank` for the stencil (halo_neighbors over
/// shape_for_ranks, ranks beyond spec.ranks dropped).
std::vector<int> stencil_neighbors(const WorkloadSpec& spec, int rank);
/// KV server count: ranks - rpc_clients when set, else max(1, ranks/4).
int kv_servers(const WorkloadSpec& spec);
/// Value-table slots per KV server segment.
inline constexpr std::uint32_t kKvSlots = 64;

/// Per-rank conduit configuration (segment sizing, deposit counting,
/// event-queue depth) for the given pattern.
conduit::Config rank_config(const WorkloadSpec& spec, int rank,
                            std::uint16_t ns);

/// One rank's traffic body; runs after every rank's Conduit::init() has
/// completed (join barrier in the sim/cluster drivers, lr.barrier() in
/// the live driver).
sim::CoTask<void> run_rank(conduit::Conduit& c, const WorkloadSpec& spec,
                           RankIo& io);

/// Runs the whole scenario as a coroutine inside an already-running
/// engine: init all conduits (joined), then all rank bodies (joined),
/// then fold RankIo into `out`.  `nodes` maps rank -> node (and thus
/// inst.proc index); null means the identity map.  Used by the cluster
/// scheduler (ns = job id) and by run_sim().
sim::CoTask<void> run_tenant(harness::Instance& inst,
                             const WorkloadSpec& spec, std::uint16_t ns,
                             const std::vector<net::NodeId>* nodes,
                             WorkloadResult* out);

/// Engine-owning wrapper for run_workload(): spawns run_tenant and runs
/// the instance to quiescence.
WorkloadResult run_sim(harness::Instance& inst, const WorkloadSpec& spec);

/// Live-UDP driver (one real thread per rank), same RankIo fold.
LiveWorkloadResult run_live_oneside(host::LiveOptions opts,
                                    const WorkloadSpec& spec);

// Per-pattern pieces (stencil.cpp / kv.cpp).
conduit::Config stencil_config(const WorkloadSpec& spec, int rank,
                               std::uint16_t ns);
conduit::Config kv_config(const WorkloadSpec& spec, int rank,
                          std::uint16_t ns);
sim::CoTask<void> stencil_rank(conduit::Conduit& c, const WorkloadSpec& spec,
                               RankIo& io);
sim::CoTask<void> kv_rank(conduit::Conduit& c, const WorkloadSpec& spec,
                          RankIo& io);

}  // namespace xt::workload::oneside
