#pragma once

// Deterministic traffic patterns (who talks to whom).
//
// A Pattern maps (sender rank, message index) to a destination rank with
// no state outside a per-rank RNG stream forked in rank order from the
// pattern seed — so the destination schedule is a pure function of
// (kind, shape, ranks, seed), byte-identical across reruns, threads and
// --jobs values.  The generator (generator.hpp) precomputes the whole
// schedule before spawning any coroutine, which is also what lets every
// receiver wait for an exact expected message count and exit cleanly.
//
// Patterns (ISSUE 4; shapes from the MPICH2/InfiniBand and NIC-collective
// related work):
//   uniform      each message to a uniformly random other rank
//   halo3d       nearest-neighbour exchange on the torus (round-robin over
//                the rank's deduplicated +/-x/y/z neighbour set)
//   permutation  a fixed random derangement: rank r always sends to pi(r)
//   incast       every rank > 0 sends to rank 0 (many-to-one hotspot)
//   rpc          request/reply: uniform server choice, server replies to
//                the client (closed- or open-loop, see generator.hpp)
//   stencil/kv   conduit-backed app scenarios (workload/oneside.hpp);
//                run_workload() dispatches them to their own drivers, but
//                they parse and enumerate like any pattern, and Pattern
//                still answers is_sender/dest for them (stencil uses the
//                halo neighbour sets, kv a uniform server draw) so
//                pattern-level tooling needs no special cases

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "net/coord.hpp"
#include "sim/rng.hpp"

namespace xt::workload {

enum class PatternKind : std::uint8_t {
  kUniform,
  kHalo3d,
  kPermutation,
  kIncast,
  kRpc,
  kStencil,
  kKv,
};

const char* pattern_name(PatternKind k);
std::optional<PatternKind> pattern_from_name(std::string_view name);
/// All patterns, in a fixed order (bench/test iteration).
const std::vector<PatternKind>& all_patterns();

/// Torus/mesh neighbour ranks of `rank` under `shape`, in +x,-x,+y,-y,
/// +z,-z probe order, deduplicated and self-excluded (dimensions of extent
/// 1 contribute nothing; extent 2 contributes one neighbour, not two).
/// Ranks map 1:1 onto nodes, so adjacency is net::Coord adjacency.
std::vector<int> halo_neighbors(const net::Shape& shape, int rank);

class Pattern {
 public:
  Pattern(PatternKind kind, const net::Shape& shape, int ranks,
          std::uint64_t seed);

  PatternKind kind() const { return kind_; }
  int ranks() const { return ranks_; }

  /// True when `rank` originates traffic under this pattern (incast: only
  /// ranks > 0 send; every other pattern: all ranks send).
  bool is_sender(int rank) const;

  /// The destination of `rank`'s i-th message.  Must be called with
  /// ascending i per rank (uniform/rpc draw from the rank's RNG stream);
  /// the streams of distinct ranks are independent, so per-rank schedules
  /// can be generated in any rank order.
  int dest(int rank, std::uint64_t i);

  /// The fixed permutation (kPermutation only; empty otherwise).
  const std::vector<int>& permutation() const { return perm_; }

 private:
  PatternKind kind_;
  net::Shape shape_;
  int ranks_;
  std::vector<sim::Rng> rank_rng_;       // forked in rank order
  std::vector<std::vector<int>> nbrs_;   // halo neighbour sets
  std::vector<int> perm_;                // permutation targets
};

}  // namespace xt::workload
