#include <algorithm>
#include <array>
#include <cstddef>

#include "harness/scenario.hpp"
#include "workload/oneside.hpp"

// 3D stencil halo exchange (oneside.hpp).  Geometry: rank r's segment is
// a row of double-buffered face slots, one pair per torus neighbour, in
// stencil_neighbors() order — neighbour i's face for iteration `it`
// lands at slot (i*2 + (it&1)).  Sender-side, `slot[i]` is where *this*
// rank appears in neighbour i's list, so a put targets
// (slot[i]*2 + phase) * face.  Parity is enough: the deposit-count sync
// lets a neighbour run at most one iteration ahead, so the face it might
// overwrite has already been consumed.

namespace xt::workload::oneside {

namespace {

std::uint32_t face_bytes(const WorkloadSpec& spec) {
  return std::max<std::uint32_t>(spec.bytes, 1);
}

}  // namespace

std::vector<int> stencil_neighbors(const WorkloadSpec& spec, int rank) {
  std::vector<int> nb =
      halo_neighbors(harness::shape_for_ranks(spec.ranks), rank);
  // The virtual torus rounds up to a power of two; neighbours in
  // unpopulated slots are no rank at all (same trim as kHalo3d).
  std::erase_if(nb, [&](int r) { return r >= spec.ranks; });
  return nb;
}

conduit::Config stencil_config(const WorkloadSpec& spec, int rank,
                               std::uint16_t ns) {
  const auto nnb =
      static_cast<std::uint32_t>(stencil_neighbors(spec, rank).size());
  conduit::Config cfg;
  cfg.segment_bytes = nnb * 2 * face_bytes(spec);
  cfg.credits = 0;  // pure put/get scenario, no AM slots to pay for
  cfg.count_deposits = true;
  cfg.eq_depth = 64 * std::max<std::size_t>(nnb, 1) + 256;
  cfg.ns = ns;
  return cfg;
}

sim::CoTask<void> stencil_rank(conduit::Conduit& c, const WorkloadSpec& spec,
                               RankIo& io) {
  const std::vector<int> nb = stencil_neighbors(spec, c.rank());
  const std::size_t nnb = nb.size();
  const auto iters = static_cast<std::uint64_t>(
      std::max(spec.msgs_per_sender, 0));
  if (nnb == 0 || iters == 0) {
    // An isolated rank (2-rank jobs on a degenerate torus) or an empty
    // run has nothing to exchange.
    io.done = true;
    co_return;
  }

  const std::uint32_t face = face_bytes(spec);
  host::Process& proc = c.process();
  sim::Engine& eng = proc.node().engine();

  // Where this rank sits in each neighbour's list (symmetric adjacency,
  // so the reverse entry always exists).
  std::vector<std::size_t> slot(nnb);
  std::vector<std::uint64_t> sbuf(nnb);
  for (std::size_t i = 0; i < nnb; ++i) {
    const std::vector<int> back = stencil_neighbors(spec, nb[i]);
    slot[i] = static_cast<std::size_t>(
        std::find(back.begin(), back.end(), c.rank()) - back.begin());
    sbuf[i] = proc.alloc(face);
  }

  for (std::uint64_t it = 0; it < iters; ++it) {
    const sim::Time t0 = eng.now();
    const std::uint64_t phase = it & 1;
    conduit::Completion local;
    for (std::size_t i = 0; i < nnb; ++i) {
      // Stamp the face so cross-validation can checksum what landed.
      std::array<std::byte, 16> stamp{};
      const std::uint64_t a =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.rank()))
           << 32) |
          static_cast<std::uint32_t>(nb[i]);
      for (std::size_t b = 0; b < 8; ++b) {
        stamp[b] = static_cast<std::byte>((a >> (8 * b)) & 0xFF);
        stamp[8 + b] = static_cast<std::byte>((it >> (8 * b)) & 0xFF);
      }
      proc.write_bytes(sbuf[i],
                       std::span(stamp.data(), std::min<std::size_t>(
                                                   face, stamp.size())));
      const std::uint64_t roff = (slot[i] * 2 + phase) * face;
      // Local completion only: the receiver counts the deposit, no ack
      // leg needed.
      if (co_await c.put(nb[i], sbuf[i], face, roff, &local, nullptr) !=
          ptl::PTL_OK) {
        co_return;
      }
      ++io.sent;
    }
    if (co_await c.wait(local) != ptl::PTL_OK) co_return;
    if (co_await c.wait_deposits((it + 1) * nnb) != ptl::PTL_OK) co_return;
    io.lat_ps.push_back(static_cast<std::uint64_t>((eng.now() - t0).to_ps()));
  }

  io.delivered = iters * nnb;
  io.done = true;
}

}  // namespace xt::workload::oneside
