#pragma once

// Throughput–latency load sweeps over the workload generator.
//
// run_load_sweep() replays one WorkloadSpec across a ladder of offered
// loads (each point a fresh, self-contained Instance, fanned out over the
// harness::SweepRunner thread pool — results are input-ordered and
// byte-identical for any --jobs value) and marks the saturation point:
// the first ladder rung where delivered throughput stops tracking offered
// load within `tolerance`.  Below saturation an open-loop generator
// delivers what it offers; past it the in-flight cap throttles injection
// and delivered throughput flattens at the stack's capacity, while the
// measured-from-intended-arrival latency percentiles blow up — the two
// views of the same knee.

#include <cstdint>
#include <vector>

#include "harness/scenario.hpp"
#include "telemetry/profiler.hpp"
#include "workload/generator.hpp"

namespace xt::workload {

struct LoadPoint {
  double offered_msgs_per_sec = 0.0;
  WorkloadResult result;
  /// True for the knee point and every rung above it: under-delivery here
  /// is *saturation by design* (the open-loop cap throttling injection),
  /// not a stack failure.  A point with result.failure non-empty fell
  /// short for a reported reason (stranded initiator, panic) instead.
  bool saturated = false;
  /// Simulator self-profile of this point's engine (all-zero unless the
  /// sweep's telemetry.profile bit was set).
  telemetry::Profiler profile;
};

/// Optional per-point telemetry captured by run_load_point when the
/// caller passes a TelemetrySpec (moved out of the Instance before it is
/// torn down).
struct PointTelemetry {
  telemetry::Profiler profile;
  std::vector<sim::Trace::Record> trace_records;
  telemetry::ProvenanceLog provenance;
};

struct LoadCurve {
  std::vector<LoadPoint> points;  ///< ladder order (ascending offered load)
  /// Index of the first point whose delivered rate fell short of
  /// (1 - tolerance) * offered; -1 when the ladder never saturated.
  int saturation_index = -1;
  /// Delivered throughput at the saturation point (0 when not reached).
  double saturation_msgs_per_sec = 0.0;
};

struct LoadSweepSpec {
  /// Template for every point; offered_msgs_per_sec is overridden per rung
  /// (and loop is forced to kOpen — saturation needs an open loop).
  WorkloadSpec base;
  host::ProcMode mode = host::ProcMode::kUser;
  ss::Config cfg{};
  std::vector<double> offered;  ///< the ladder, ascending
  double tolerance = 0.1;
  int jobs = 0;  ///< SweepRunner threads; 0 = hardware concurrency
  /// Scenario seed base; rung i runs with scenario seed `seed + i` so
  /// fault-injection streams are independent across points.
  std::uint64_t seed = 1;
  /// Telemetry each point collects; profile results land on
  /// LoadPoint::profile (collected inside the worker, so curves stay
  /// input-order deterministic for any `jobs`).
  harness::Scenario::TelemetrySpec telemetry{};
};

/// One self-contained measurement: builds the scenario, runs the workload,
/// returns the result.  Thread-safe (nothing shared, nothing global).
WorkloadResult run_load_point(const WorkloadSpec& spec, host::ProcMode mode,
                              const ss::Config& cfg,
                              std::uint64_t scenario_seed);

/// Same, with telemetry: the scenario is built with `tel` and whatever it
/// collected is moved into `out` (when non-null) before teardown.
WorkloadResult run_load_point(const WorkloadSpec& spec, host::ProcMode mode,
                              const ss::Config& cfg,
                              std::uint64_t scenario_seed,
                              const harness::Scenario::TelemetrySpec& tel,
                              PointTelemetry* out);

LoadCurve run_load_sweep(const LoadSweepSpec& spec);

}  // namespace xt::workload
