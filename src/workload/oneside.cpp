#include "workload/oneside.hpp"

#include <memory>
#include <utility>

#include "sim/condition.hpp"
#include "sim/strf.hpp"

namespace xt::workload::oneside {

namespace {

using sim::CoTask;

/// Runs `t` and decrements the join counter, waking the joiner at zero.
CoTask<void> with_join(CoTask<void> t, int& remaining,
                       sim::WaitQueue& done) {
  co_await std::move(t);
  if (--remaining == 0) done.notify_all();
}

CoTask<void> init_conduit(conduit::Conduit& c, std::uint8_t& ok) {
  ok = (co_await c.init()) == ptl::PTL_OK ? 1 : 0;
}

/// Folds per-rank outcomes into a WorkloadResult (counters summed,
/// latency samples concatenated rank-major).
void fold(const std::vector<RankIo>& ios, sim::Time span,
          const std::string& first_panic, WorkloadResult* out) {
  out->span = span;
  out->complete = true;
  for (const RankIo& io : ios) {
    out->sent += io.sent;
    out->delivered += io.delivered;
    if (!io.done) out->complete = false;
    out->latency_ps.insert(out->latency_ps.end(), io.lat_ps.begin(),
                           io.lat_ps.end());
  }
  if (!out->complete && out->failure.empty()) {
    out->failure = first_panic.empty()
                       ? "incomplete: expected events still missing at "
                         "quiescence"
                       : first_panic;
  }
}

}  // namespace

bool is_oneside(PatternKind k) {
  return k == PatternKind::kStencil || k == PatternKind::kKv;
}

conduit::Config rank_config(const WorkloadSpec& spec, int rank,
                            std::uint16_t ns) {
  return spec.pattern == PatternKind::kStencil ? stencil_config(spec, rank, ns)
                                               : kv_config(spec, rank, ns);
}

CoTask<void> run_rank(conduit::Conduit& c, const WorkloadSpec& spec,
                      RankIo& io) {
  if (spec.pattern == PatternKind::kStencil) {
    co_await stencil_rank(c, spec, io);
  } else {
    co_await kv_rank(c, spec, io);
  }
}

CoTask<void> run_tenant(harness::Instance& inst, const WorkloadSpec& spec,
                        std::uint16_t ns,
                        const std::vector<net::NodeId>* nodes,
                        WorkloadResult* out) {
  const int n = spec.ranks;
  sim::Engine& eng = inst.engine();
  const auto nu = static_cast<std::size_t>(n);

  std::vector<host::Process*> procs(nu);
  std::vector<ptl::ProcessId> ids(nu);
  for (int r = 0; r < n; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    const std::size_t p =
        nodes != nullptr ? static_cast<std::size_t>((*nodes)[u]) : u;
    procs[u] = &inst.proc(p);
    ids[u] = procs[u]->id();
  }

  std::vector<std::unique_ptr<conduit::Conduit>> cs(nu);
  std::vector<std::uint8_t> init_ok(nu, 0);
  for (int r = 0; r < n; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    cs[u] = std::make_unique<conduit::Conduit>(*procs[u], ids, r,
                                               rank_config(spec, r, ns));
  }

  sim::WaitQueue join(eng);
  int remaining = n;
  for (int r = 0; r < n; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    sim::spawn(with_join(init_conduit(*cs[u], init_ok[u]), remaining, join));
  }
  while (remaining > 0) co_await join.wait();
  for (const std::uint8_t ok : init_ok) {
    if (ok == 0) {
      out->complete = false;
      out->failure = "conduit init failed";
      co_return;
    }
  }

  const sim::Time t0 = eng.now();
  std::vector<RankIo> ios(nu);
  remaining = n;
  for (int r = 0; r < n; ++r) {
    const std::size_t u = static_cast<std::size_t>(r);
    sim::spawn(with_join(run_rank(*cs[u], spec, ios[u]), remaining, join));
  }
  while (remaining > 0) co_await join.wait();

  fold(ios, eng.now() - t0, inst.machine().first_panic(), out);
}

WorkloadResult run_sim(harness::Instance& inst, const WorkloadSpec& spec) {
  WorkloadResult res;
  sim::spawn(run_tenant(inst, spec, 0, nullptr, &res));
  inst.run();
  return res;
}

LiveWorkloadResult run_live_oneside(host::LiveOptions opts,
                                    const WorkloadSpec& spec) {
  opts.ranks = spec.ranks;
  std::vector<RankIo> ios(static_cast<std::size_t>(spec.ranks));
  std::vector<std::int64_t> span_ps(static_cast<std::size_t>(spec.ranks), 0);

  host::LiveApp app = [&](host::LiveRank& lr) -> CoTask<void> {
    const std::size_t u = static_cast<std::size_t>(lr.rank());
    std::vector<ptl::ProcessId> ids;
    for (int r = 0; r < spec.ranks; ++r) ids.push_back(lr.peer(r));
    conduit::Conduit c(lr.process(), ids, lr.rank(),
                       rank_config(spec, lr.rank(), 0));
    const bool ok = (co_await c.init()) == ptl::PTL_OK;
    co_await lr.barrier();  // always reached, or peers would hang here
    const sim::Time t0 = lr.engine().now();
    if (ok) co_await run_rank(c, spec, ios[u]);
    span_ps[u] = (lr.engine().now() - t0).to_ps();
    // Hold the fabric up until every rank's traffic has fully landed
    // (a passive KV server must outlive its clients).
    co_await lr.barrier();
  };

  LiveWorkloadResult res;
  res.ranks = host::run_live_cluster(opts, app);

  sim::Time span{};
  for (std::size_t u = 0; u < ios.size(); ++u) {
    if (span_ps[u] > span.to_ps()) span = sim::Time::ps(span_ps[u]);
  }
  fold(ios, span, "", &res.result);
  for (std::size_t u = 0; u < res.ranks.size(); ++u) {
    if (res.result.failure.empty() && !res.ranks[u].ok()) {
      res.result.complete = false;
      res.result.failure =
          sim::strf("rank %zu failed: %s%s", u, res.ranks[u].panic.c_str(),
                    res.ranks[u].error.c_str());
    }
  }
  return res;
}

}  // namespace xt::workload::oneside
