#pragma once

// Live (UDP loopback) execution of the synthetic workload generator.
//
// run_live_workload() runs the same WorkloadSpec the simulated runner
// takes, but as genuine multi-process traffic: each rank is a real thread
// with its own engine pinned to wall-clock, exchanging datagrams through a
// host::UdpFabric.  The schedule is the byte-identical detail::build_plan()
// the simulator uses — pure in the spec, so every rank computes the same
// machine-wide plan locally and acts on its own row.  Latency samples are
// wall-clock (engine time == wall time under the live driver), which is
// what makes the sim-vs-live cross-validation in bench/xval meaningful.

#include <vector>

#include "host/live_cluster.hpp"
#include "workload/generator.hpp"

namespace xt::workload {

struct LiveWorkloadResult {
  /// Merged across ranks exactly like the simulated runner merges rank
  /// states: counters summed, latency samples concatenated rank-major,
  /// span = slowest rank's traffic-phase duration (wall-clock).
  WorkloadResult result;
  std::vector<host::LiveRankResult> ranks;

  bool ok() const {
    if (!result.complete) return false;
    for (const auto& r : ranks) {
      if (!r.ok()) return false;
    }
    return true;
  }
};

/// Runs `spec` over UDP loopback.  opts.ranks is overridden by spec.ranks;
/// everything else in opts (drop rate, config, watchdog) applies as-is.
LiveWorkloadResult run_live_workload(host::LiveOptions opts,
                                     const WorkloadSpec& spec);

}  // namespace xt::workload
