#pragma once

// Workload-generator building blocks, shared between the simulated runner
// (generator.cpp: one engine drives every rank) and the live runner
// (live.cpp: each rank's thread drives its own engine over UDP loopback).
//
// Everything here is per-rank-clean by construction: build_plan() is a pure
// function of the spec (sim::Rng streams forked in rank order), so every
// live rank computes the identical machine-wide Plan locally and then only
// acts on its own row; Ctx/RankState hold one rank's engine and Portals
// state.  That purity is also what makes the simulated runner byte-
// identical across --jobs values.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "host/node.hpp"
#include "net/coord.hpp"
#include "sim/condition.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "workload/generator.hpp"

namespace xt::workload::detail {

// Match bits: one match list entry per role so the pump can tell data
// deposits from RPC replies by ev.match_bits alone.
inline constexpr ptl::MatchBits kDataBits = 1;
inline constexpr ptl::MatchBits kReplyBits = 2;

/// What event frees a sender's in-flight slot.
enum class Pace : std::uint8_t {
  kAck,      // non-RPC default: Portals ack (message delivered)
  kSendEnd,  // count_drops runs: local transmit completion
  kReply,    // RPC: the server's reply
};

struct RankPlan {
  std::vector<int> dest;           // destination of the i-th message
  std::vector<sim::Time> arrival;  // open loop: offset from traffic start
};

struct Plan {
  std::vector<RankPlan> send;
  std::vector<int> expect_data;  // data messages addressed to each rank
  sim::Time sched_span{};        // last scheduled arrival (open loop)
};

struct Ctx {
  const WorkloadSpec* spec = nullptr;
  sim::Engine* eng = nullptr;
  ptl::Pid pid = 0;  // every rank's process shares one pid
  Pace pace = Pace::kAck;
  bool rpc = false;
  sim::Time t0{};
  std::uint64_t sent = 0;
  /// Rank → physical node id.  Null = identity (rank i runs on node i),
  /// which is the single-tenant runners' layout; the multi-tenant cluster
  /// points this at the job's placement so patterns stay expressed in
  /// virtual ranks while traffic targets the job's actual nodes.
  const std::vector<net::NodeId>* node_of = nullptr;
  /// Match bits for the data / reply match list entries.  The defaults are
  /// the single-tenant namespace; each cluster job gets its own pair, so
  /// retained MEs from a departed job can never match a new job's traffic
  /// on a reused node.
  ptl::MatchBits data_bits = kDataBits;
  ptl::MatchBits reply_bits = kReplyBits;

  net::NodeId node_of_rank(int r) const {
    return node_of ? (*node_of)[static_cast<std::size_t>(r)]
                   : static_cast<net::NodeId>(r);
  }
};

struct RankState {
  host::Process* proc = nullptr;
  std::unique_ptr<sim::WaitQueue> slots;
  std::size_t eq_depth = 0;
  ptl::EqHandle eq{};
  ptl::MdHandle send_md{};
  int inflight = 0;
  /// me_churn: live decoy ME handles and the rank's private churn stream
  /// (forked deterministically in init_rank_state, so churn stays pure
  /// per-rank and --jobs byte-identity holds).
  std::vector<ptl::MeHandle> churn_mes;
  sim::Rng churn_rng;

  std::uint64_t send_end = 0, acks = 0, data_ok = 0, data_drop = 0,
                replies = 0;
  std::uint64_t exp_send_end = 0, exp_acks = 0, exp_data = 0, exp_replies = 0;

  std::vector<std::uint64_t> lat_ps;
  /// Per-request completion tracking (RPC): hdr_data stamp -> requests
  /// still awaiting a reply with that stamp.  Must drain to empty.
  std::unordered_map<std::uint64_t, int> pending;
  /// stamp -> provenance record id (only populated when provenance is on).
  std::unordered_multimap<std::uint64_t, std::uint64_t> prov;

  bool done(const Ctx& ctx) const {
    const std::uint64_t data_done =
        data_ok + (ctx.spec->count_drops ? data_drop : 0);
    return send_end >= exp_send_end && acks >= exp_acks &&
           data_done >= exp_data && replies >= exp_replies;
  }
};

double interarrival_s(sim::Rng& rng, Arrival a, double rate);

/// The full machine-wide schedule — a pure function of the spec.
Plan build_plan(const WorkloadSpec& spec);

/// Fills in `st` (derived expectation counts and EQ depth) for rank `r` of
/// `plan` under `ctx`'s pacing; `st.proc` and `st.slots` must already be
/// set.  Shared so sim and live runners can never disagree on termination.
void init_rank_state(RankState& st, const Plan& plan, const Ctx& ctx, int r);

sim::CoTask<void> setup_rank(RankState& st, Ctx& ctx);
sim::CoTask<void> pump_rank(RankState& st, Ctx& ctx);
/// One me_churn step: attach/insert/unlink a decoy ME per the rank's churn
/// stream.  Called by pump_rank on every data delivery when spec->me_churn.
sim::CoTask<void> churn_step(RankState& st);
sim::CoTask<void> send_rank(int rank, RankState& st, const RankPlan& plan,
                            Ctx& ctx);

/// Collects counts, completeness and latency samples from quiesced rank
/// states, classifying any shortfall the way run_workload reports it
/// ("node N panicked", "stranded initiator", "incomplete").  span is
/// eng->now() - ctx.t0 at call time; `first_panic` is the machine's
/// first_panic() string.  Shared by the single-tenant runner and the
/// multi-tenant cluster so a job's failure reads identically either way.
WorkloadResult gather_result(const std::vector<RankState>& st, const Ctx& ctx,
                             const Plan& plan, const std::string& first_panic);

}  // namespace xt::workload::detail
